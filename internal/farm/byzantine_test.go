package farm

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"buanalysis/internal/bumdp"
	"buanalysis/internal/expstore"
	"buanalysis/internal/jobqueue"
	"buanalysis/internal/obs"
)

// The byzantine drills: a worker that lies about its results must never
// materialize an artifact, must accumulate reputation damage until it
// is quarantined, and must leave the merged science byte-identical to
// an honest run. This is the farm's version of the paper's thesis — a
// prescribed validity predicate at the consensus point contains
// adversaries that per-node discretion cannot.

// testBUSolveJob is the cheap real job the drills run: a full BU MDP
// solve small enough for milliseconds.
func testBUSolveJob(t *testing.T) jobqueue.Job {
	t.Helper()
	p := bumdp.Params{Alpha: 0.15, Beta: 0.425, Gamma: 0.425, AD: 3, Model: bumdp.Compliant}
	job, err := NewBUSolveJob(p, bumdp.SolveOptions{RatioTol: 1e-4, Epsilon: 1e-8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestFarmRejectsForgedCompletion: a well-formed, correctly keyed blob
// whose reported utility is false is refused at the coordinator, never
// stored, counted against the worker, and the job is re-executed by an
// honest worker whose result lands.
func TestFarmRejectsForgedCompletion(t *testing.T) {
	client, q, st, _ := testFarm(t, jobqueue.Options{
		BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
	})
	job := testBUSolveJob(t)
	if _, _, err := client.Enqueue(job); err != nil {
		t.Fatal(err)
	}
	leased, ok, err := client.Lease("byz", nil, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	blob, err := Execute(leased, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The capable forgery: decode, inflate the claim, re-encode — the
	// bytes stay canonical and keyed right, only the claim is a lie.
	var rec expstore.BUSolveRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Utility += 0.01
	forged, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Complete(leased.ID, leased.Lease, forged); !errors.Is(err, ErrRejected) {
		t.Fatalf("forged completion err = %v, want ErrRejected", err)
	}
	if _, found := st.Get(leased.ID); found {
		t.Fatal("forged bytes were materialized")
	}
	got, _ := q.Get(leased.ID)
	if got.State != jobqueue.Pending || !strings.Contains(got.LastError, "rejected") {
		t.Fatalf("after rejection: %+v", got)
	}
	if stq := q.Stats(); stq.VerifyRejects != 1 {
		t.Fatalf("stats = %+v", stq)
	}

	// An honest retry materializes the true bytes.
	time.Sleep(5 * time.Millisecond)
	release, ok, err := client.Lease("honest", nil, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("honest lease: ok=%v err=%v", ok, err)
	}
	if first, err := client.Complete(release.ID, release.Lease, blob); err != nil || !first {
		t.Fatalf("honest completion: first=%v err=%v", first, err)
	}
	if stored, found := st.Get(leased.ID); !found || string(stored) != string(blob) {
		t.Fatal("honest bytes not materialized intact")
	}
}

// TestFarmByzantineWorkerQuarantined is the end-to-end drill: a chaos
// worker corrupting every result is rejected, quarantined, and exits;
// an honest worker then drains the queue and the stored artifact is
// byte-identical to a direct execution.
func TestFarmByzantineWorkerQuarantined(t *testing.T) {
	client, q, st, _ := testFarm(t, jobqueue.Options{
		BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
		QuarantineAfter: 1, MaxAttempts: 10,
	})
	// A sweep shard: the byte-deterministic artifact kind (Table 2's),
	// so the drained result can be compared byte-for-byte.
	cfg := testSweepConfig()
	cfg.Ratios = cfg.Ratios[:1]
	job, err := NewSweepShardJob(bumdp.Compliant, cfg, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Enqueue(job); err != nil {
		t.Fatal(err)
	}

	byz := &Worker{
		Client: client, Name: "byz", Poll: 2 * time.Millisecond,
		SolverWorkers: 1, Logf: t.Logf,
		Chaos: &Chaos{Mode: "flipcell", Seed: 42},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	// The byzantine worker's run ends in its own quarantine.
	if err := byz.Run(ctx); !errors.Is(err, jobqueue.ErrQuarantined) {
		t.Fatalf("byzantine run err = %v, want ErrQuarantined", err)
	}
	if byz.Rejected() < 1 {
		t.Fatal("byzantine worker's forgery was not rejected")
	}
	if _, found := st.Get(job.ID); found {
		t.Fatal("byzantine worker materialized an artifact")
	}
	quarantined := false
	for _, w := range q.Workers() {
		if strings.HasPrefix(w.Name, "byz") && w.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("byzantine worker not quarantined: %+v", q.Workers())
	}

	honest := &Worker{
		Client: client, Name: "honest", Drain: true,
		Poll: 2 * time.Millisecond, SolverWorkers: 1, Logf: t.Logf,
	}
	if err := honest.Run(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := Execute(job, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stored, found := st.Get(job.ID); !found || string(stored) != string(want) {
		t.Fatal("drained artifact differs from direct execution")
	}
}

// TestFarmQuorumMismatchAndRecovery: under a 2-quorum, a vote that
// passes the validity predicate but differs in bytes (a sub-tolerance
// nudge — the forgery the predicate alone cannot refute) voids the
// round; the retry round with agreeing voters completes and
// materializes the honest bytes.
func TestFarmQuorumMismatchAndRecovery(t *testing.T) {
	client, q, st, _ := testFarm(t, jobqueue.Options{
		BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
		Quorum: 2,
	})
	job := testBUSolveJob(t)
	if _, _, err := client.Enqueue(job); err != nil {
		t.Fatal(err)
	}
	blob, err := Execute(job, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Vote 1: honest bytes. Not first — the quorum stays open.
	l1, ok, err := client.Lease("w1", nil, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("lease 1: ok=%v err=%v", ok, err)
	}
	if first, err := client.Complete(l1.ID, l1.Lease, blob); err != nil || first {
		t.Fatalf("vote 1: first=%v err=%v, want false/nil", first, err)
	}
	if _, found := st.Get(job.ID); found {
		t.Fatal("artifact materialized on an open quorum")
	}

	// Vote 2: a nudge far below the verifier's tolerance — valid to the
	// predicate, but not the same bytes. Only the quorum catches it.
	var rec expstore.BUSolveRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Utility += 1e-12
	nudged, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(nudged) == string(blob) {
		t.Fatal("nudge did not change the bytes")
	}
	l2, ok, err := client.Lease("w2", nil, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("lease 2: ok=%v err=%v", ok, err)
	}
	if _, err := client.Complete(l2.ID, l2.Lease, nudged); !errors.Is(err, jobqueue.ErrQuorumMismatch) {
		t.Fatalf("conflicting vote err = %v, want ErrQuorumMismatch", err)
	}
	if _, found := st.Get(job.ID); found {
		t.Fatal("artifact materialized from a voided quorum")
	}
	if stq := q.Stats(); stq.QuorumMismatches != 1 {
		t.Fatalf("stats = %+v", stq)
	}

	// Retry round: two agreeing voters close the quorum; the second
	// (closing) completion is the first materialization.
	time.Sleep(5 * time.Millisecond)
	l3, ok, err := client.Lease("w3", nil, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("lease 3: ok=%v err=%v", ok, err)
	}
	if first, err := client.Complete(l3.ID, l3.Lease, blob); err != nil || first {
		t.Fatalf("retry vote 1: first=%v err=%v", first, err)
	}
	l4, ok, err := client.Lease("w4", nil, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("lease 4: ok=%v err=%v", ok, err)
	}
	if first, err := client.Complete(l4.ID, l4.Lease, blob); err != nil || !first {
		t.Fatalf("closing vote: first=%v err=%v", first, err)
	}
	if stored, found := st.Get(job.ID); !found || string(stored) != string(blob) {
		t.Fatal("quorum-agreed bytes not materialized")
	}
}

// TestFarmQuorumResumesAcrossRestart: a half-met quorum crosses a
// coordinator restart through the journal — the restarted coordinator
// still demands the remaining vote, still refuses the prior voter, and
// materializes on the closing vote.
func TestFarmQuorumResumesAcrossRestart(t *testing.T) {
	journal := t.TempDir() + "/jobqueue.json"
	storeDir := t.TempDir()
	qopts := jobqueue.Options{Journal: journal, Quorum: 2}

	q1, err := jobqueue.Open(qopts)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := expstore.Open(expstore.Config{Dir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer((&API{Queue: q1, Store: st1}).Handler())
	c1 := &Client{Base: srv1.URL}
	job := testBUSolveJob(t)
	if _, _, err := c1.Enqueue(job); err != nil {
		t.Fatal(err)
	}
	blob, err := Execute(job, 1)
	if err != nil {
		t.Fatal(err)
	}
	l1, ok, err := c1.Lease("w1", nil, 30*time.Second)
	if err != nil || !ok {
		t.Fatalf("lease before crash: ok=%v err=%v", ok, err)
	}
	if first, err := c1.Complete(l1.ID, l1.Lease, blob); err != nil || first {
		t.Fatalf("vote before crash: first=%v err=%v", first, err)
	}
	srv1.Close()

	q2, err := jobqueue.Open(qopts)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := expstore.Open(expstore.Config{Dir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer((&API{Queue: q2, Store: st2}).Handler())
	defer srv2.Close()
	c2 := &Client{Base: srv2.URL}

	// The prior voter is still excluded after the restart.
	if _, ok, err := c2.Lease("w1", nil, 5*time.Second); ok || err != nil {
		t.Fatalf("prior voter re-leased after restart: ok=%v err=%v", ok, err)
	}
	l2, ok, err := c2.Lease("w2", nil, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("closing lease after restart: ok=%v err=%v", ok, err)
	}
	if first, err := c2.Complete(l2.ID, l2.Lease, blob); err != nil || !first {
		t.Fatalf("closing vote after restart: first=%v err=%v", first, err)
	}
	if stored, found := st2.Get(job.ID); !found || string(stored) != string(blob) {
		t.Fatal("quorum artifact not materialized after restart")
	}
}

// TestFarmDuplicateMismatchCounted: a duplicate completion whose bytes
// disagree with the materialized artifact is acknowledged (exactly-once
// holds) but counted — with deterministic executors every hit is a
// byzantine re-delivery or a determinism bug.
func TestFarmDuplicateMismatchCounted(t *testing.T) {
	reg := obs.NewRegistry()
	Observe(reg)
	client, _, st, _ := testFarm(t, jobqueue.Options{})
	job, err := NewEBGameJob([]float64{0.5, 0.3, 0.2}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Enqueue(job); err != nil {
		t.Fatal(err)
	}
	leased, ok, err := client.Lease("w", nil, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	blob, err := Execute(leased, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first, err := client.Complete(leased.ID, leased.Lease, blob); err != nil || !first {
		t.Fatalf("first completion: first=%v err=%v", first, err)
	}
	// Duplicate with disagreeing bytes: acknowledged, artifact intact,
	// mismatch counted.
	if first, err := client.Complete(leased.ID, leased.Lease, []byte(`{"tampered":true}`)); err != nil || first {
		t.Fatalf("duplicate: first=%v err=%v, want false/nil", first, err)
	}
	if stored, found := st.Get(leased.ID); !found || string(stored) != string(blob) {
		t.Fatal("duplicate touched the stored artifact")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "farm_duplicate_mismatch_total 1") {
		t.Fatalf("metrics missing duplicate mismatch:\n%s", sb.String())
	}
	// A byte-identical duplicate does not count.
	if _, err := client.Complete(leased.ID, leased.Lease, blob); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "farm_duplicate_mismatch_total 1") {
		t.Fatalf("identical duplicate moved the counter:\n%s", sb.String())
	}
}

// TestFarmClientRetriesTransientOnly: idempotent calls ride out
// transient 5xx failures under the client's bounded backoff; the
// non-idempotent complete call surfaces the failure to its caller
// without a replay.
func TestFarmClientRetriesTransientOnly(t *testing.T) {
	q, err := jobqueue.Open(jobqueue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := expstore.Open(expstore.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	inner := (&API{Queue: q, Store: st}).Handler()

	var leaseCalls, completeCalls atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/jobs/lease":
			// First two lease deliveries fail transiently.
			if leaseCalls.Add(1) <= 2 {
				http.Error(w, "coordinator overloaded", http.StatusServiceUnavailable)
				return
			}
		case "/jobs/complete":
			// Completions always fail: the client must not retry them.
			completeCalls.Add(1)
			http.Error(w, "coordinator overloaded", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	client := &Client{Base: srv.URL}

	job, err := NewEBGameJob([]float64{0.6, 0.4}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Enqueue(job); err != nil {
		t.Fatal(err)
	}
	leased, ok, err := client.Lease("w", nil, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("lease through flaky transport: ok=%v err=%v", ok, err)
	}
	if got := leaseCalls.Load(); got != 3 {
		t.Fatalf("lease attempts = %d, want 3 (two 503s + success)", got)
	}

	blob, err := Execute(leased, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Complete(leased.ID, leased.Lease, blob); err == nil {
		t.Fatal("complete through a 503 succeeded")
	}
	if got := completeCalls.Load(); got != 1 {
		t.Fatalf("complete attempts = %d, want 1 (no transport-level retry)", got)
	}
}
