package farm

import (
	"encoding/json"
	"hash/fnv"
	"math/rand"

	"buanalysis/internal/expstore"
	"buanalysis/internal/jobqueue"
)

// Chaos turns a worker byzantine: it tampers with computed results
// between execution and delivery, which is exactly the adversary the
// coordinator's prescribed validity predicate exists to contain. The
// tampering is deterministic — each job's mutation is seeded by
// Seed ^ fnv(job ID) — so a failing byzantine drill replays exactly
// from its seed.
//
// Modes, in increasing subtlety:
//
//   - "corrupt": flip one byte of the result blob. Usually breaks the
//     JSON outright; the verifier's structural checks catch it.
//   - "flipcell": decode the record and shift one reported value by
//     +0.01 — well-formed, canonical, correctly keyed bytes whose
//     claim is simply false. Only the semantic (certificate) check
//     catches it.
//   - "gain": scale the reported value by 2% — the same forgery as
//     flipcell but multiplicative, a worker inflating the attacker's
//     utility.
//   - "stall": compute, then never deliver. Burns the lease; caught by
//     lease expiry, and chronic stalling counts toward quarantine.
//
// An unknown mode behaves like "corrupt".
type Chaos struct {
	Mode string
	Seed int64
}

// rng derives the per-job deterministic generator.
func (c *Chaos) rng(jobID string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(jobID))
	return rand.New(rand.NewSource(c.Seed ^ int64(h.Sum64())))
}

// Tamper applies the chaos mode to one computed result. It returns the
// bytes to deliver and whether to stall (deliver nothing, burning the
// lease). A tampering that cannot apply (e.g. a record shape the mode
// does not know) falls back to a byte flip, so a byzantine worker never
// accidentally delivers honest bytes.
func (c *Chaos) Tamper(job jobqueue.Job, blob []byte) (tampered []byte, stall bool) {
	if c == nil {
		return blob, false
	}
	rng := c.rng(job.ID)
	switch c.Mode {
	case "stall":
		return nil, true
	case "flipcell":
		if out, ok := perturbValue(job.Kind, blob, func(v float64) float64 { return v + 0.01 }, rng); ok {
			return out, false
		}
	case "gain":
		if out, ok := perturbValue(job.Kind, blob, func(v float64) float64 { return v * 1.02 }, rng); ok {
			return out, false
		}
	}
	return flipByte(blob, rng), false
}

// flipByte flips one random byte (mode "corrupt" and the fallback).
func flipByte(blob []byte, rng *rand.Rand) []byte {
	out := append([]byte(nil), blob...)
	if len(out) > 0 {
		out[rng.Intn(len(out))] ^= 0x40
	}
	return out
}

// perturbValue re-encodes blob with one reported solver value moved by
// f: the BU solve's utility, or one non-skipped cell of a sweep shard.
// The mutation round-trips through the typed record so the forged bytes
// stay canonical — the hardest case the verifier must still refuse.
func perturbValue(kind string, blob []byte, f func(float64) float64, rng *rand.Rand) ([]byte, bool) {
	switch kind {
	case expstore.KindBUSolve:
		var rec expstore.BUSolveRecord
		if json.Unmarshal(blob, &rec) != nil {
			return nil, false
		}
		rec.Utility = f(rec.Utility)
		out, err := json.Marshal(rec)
		return out, err == nil
	case expstore.KindSweepShard:
		var rec expstore.SweepShardRecord
		if json.Unmarshal(blob, &rec) != nil {
			return nil, false
		}
		live := make([]int, 0, len(rec.Cells))
		for i, cell := range rec.Cells {
			if !cell.Skipped && cell.Err == "" {
				live = append(live, i)
			}
		}
		if len(live) == 0 {
			return nil, false
		}
		i := live[rng.Intn(len(live))]
		rec.Cells[i].Value = f(rec.Cells[i].Value)
		out, err := json.Marshal(rec)
		return out, err == nil
	default:
		return nil, false
	}
}
