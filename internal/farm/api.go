package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"buanalysis/internal/bumdp"
	"buanalysis/internal/core"
	"buanalysis/internal/expstore"
	"buanalysis/internal/jobqueue"
	"buanalysis/internal/obs"
	"buanalysis/internal/verify"
)

// API is the farm's HTTP surface: the /jobs endpoints over one queue
// and the store completed artifacts materialize into. cmd/buserve
// mounts it next to the serving endpoints, so workers fill the exact
// store /solve, /sweep and /tables answer from.
type API struct {
	Queue *jobqueue.Queue
	Store *expstore.Store
	// Verifier is the prescribed validity predicate every completion
	// must pass before its bytes materialize. Nil selects the default
	// checker (verify's methods are nil-safe), so verification is
	// always on: the coordinator — not the worker — decides what a
	// valid result is, exactly as a prescribed block-validity consensus
	// decides what a valid block is.
	Verifier *verify.Checker
	// Tracer, if non-nil, records the coordinator's side of each job's
	// trace: enqueue and sweep fan-out spans, the store write on first
	// completion, and the sweep merge. Requests carrying a W3C
	// traceparent header parent their spans under the caller's trace.
	Tracer obs.Tracer
}

// startSpan opens a span for one request, parented on the caller's
// traceparent header when one is present. Nil when tracing is off.
func (a *API) startSpan(r *http.Request, name string) *obs.Span {
	if a.Tracer == nil {
		return nil
	}
	parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
	return obs.StartSpanFrom(a.Tracer, parent, name)
}

// stampTrace records a job's position in the trace tree before it is
// enqueued: under the coordinator's own span when tracing is on, else
// under the caller's traceparent directly — a traced client still
// threads its trace through an untraced coordinator.
func stampTrace(j *jobqueue.Job, r *http.Request, span *obs.Span) {
	sc := span.Context()
	if !sc.Valid() {
		sc, _ = obs.ParseTraceparent(r.Header.Get("traceparent"))
	}
	j.Trace, j.ParentSpan = sc.TraceID, sc.SpanID
}

// Handler returns the /jobs endpoint tree:
//
//	POST /jobs/enqueue       {kind, spec, priority}        -> {job, created}
//	POST /jobs/sweep         {model, config, count, prio}  -> {ids, created}
//	POST /jobs/sweep/status  {model, config, count}        -> per-shard states
//	POST /jobs/sweep/result  {model, config, count}        -> merged SweepRecord
//	POST /jobs/lease         {worker, kinds, ttl_ms}       -> {job, ok}
//	POST /jobs/heartbeat     {id, lease, ttl_ms}           -> {}
//	POST /jobs/complete      {id, lease, result}           -> {first}
//	POST /jobs/fail          {id, lease, reason}           -> {}
//	POST /jobs/requeue       {id}                          -> {}
//	GET  /jobs/get?id=K                                    -> job
//	GET  /jobs/list          (GET /jobs/dead: dead only)   -> [job...]
//	GET  /jobs/statsz                                      -> queue stats
//
// Lease-protocol violations map to HTTP statuses the client maps back:
// 404 unknown job, 409 lease not held / not dead-lettered.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs/enqueue", post(a.handleEnqueue))
	mux.HandleFunc("/jobs/sweep", post(a.handleSweepEnqueue))
	mux.HandleFunc("/jobs/sweep/status", post(a.handleSweepStatus))
	mux.HandleFunc("/jobs/sweep/result", post(a.handleSweepResult))
	mux.HandleFunc("/jobs/lease", post(a.handleLease))
	mux.HandleFunc("/jobs/heartbeat", post(a.handleHeartbeat))
	mux.HandleFunc("/jobs/complete", post(a.handleComplete))
	mux.HandleFunc("/jobs/fail", post(a.handleFail))
	mux.HandleFunc("/jobs/requeue", post(a.handleRequeue))
	mux.HandleFunc("/jobs/get", a.handleGet)
	mux.HandleFunc("/jobs/list", a.handleList)
	mux.HandleFunc("/jobs/dead", a.handleDead)
	mux.HandleFunc("/jobs/statsz", a.handleStats)
	return mux
}

// apiError carries an HTTP status with a protocol error.
type apiError struct {
	status int
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

func httpStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	switch {
	case errors.Is(err, jobqueue.ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, jobqueue.ErrNotLeased), errors.Is(err, jobqueue.ErrNotDead),
		errors.Is(err, jobqueue.ErrQuorumMismatch):
		return http.StatusConflict
	case errors.Is(err, jobqueue.ErrQuarantined):
		return http.StatusForbidden
	default:
		return http.StatusBadRequest
	}
}

// post adapts a JSON handler, enforcing the method and mapping errors
// to the protocol statuses.
func post(h func(*http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		resp, err := h(r)
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		writeJSON(w, resp)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

type enqueueRequest struct {
	Kind     string          `json:"kind"`
	Spec     json.RawMessage `json:"spec"`
	Priority int             `json:"priority,omitempty"`
}

type enqueueResponse struct {
	Job     jobqueue.Job `json:"job"`
	Created bool         `json:"created"`
}

func (a *API) handleEnqueue(r *http.Request) (any, error) {
	var req enqueueRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	job, err := NewJob(req.Kind, req.Spec, req.Priority)
	if err != nil {
		return nil, err
	}
	span := a.startSpan(r, "farm.enqueue")
	stampTrace(&job, r, span)
	job, created, err := a.Queue.Enqueue(job)
	if err != nil {
		return nil, &apiError{http.StatusInternalServerError, err}
	}
	span.EndDetail(job.ID)
	return enqueueResponse{Job: job, Created: created}, nil
}

// SweepRequest identifies one sharded sweep: the model, the sweep
// config, and the fan-out width. The same triple addresses the fan-out
// (POST /jobs/sweep), its progress (/jobs/sweep/status) and its merged
// result (/jobs/sweep/result), which is what makes sweeps resumable:
// re-posting after a coordinator restart collapses onto the journaled
// jobs, and the result endpoint answers from whatever shards the store
// already holds.
type SweepRequest struct {
	Model    int              `json:"model"`
	Config   core.SweepConfig `json:"config"`
	Count    int              `json:"count"`
	Priority int              `json:"priority,omitempty"`
}

// SweepEnqueueResponse reports the fan-out: the shard job IDs in shard
// order and how many were newly created (the rest already existed).
type SweepEnqueueResponse struct {
	Model   int      `json:"model"`
	Count   int      `json:"count"`
	IDs     []string `json:"ids"`
	Created int      `json:"created"`
}

func (a *API) handleSweepEnqueue(r *http.Request) (any, error) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	jobs, err := NewSweepShardJobs(bumdp.IncentiveModel(req.Model), req.Config, req.Count, req.Priority)
	if err != nil {
		return nil, err
	}
	span := a.startSpan(r, "farm.sweep")
	resp := SweepEnqueueResponse{Model: req.Model, Count: req.Count}
	for _, j := range jobs {
		stampTrace(&j, r, span)
		j, created, err := a.Queue.Enqueue(j)
		if err != nil {
			return nil, &apiError{http.StatusInternalServerError, err}
		}
		if created {
			resp.Created++
		}
		resp.IDs = append(resp.IDs, j.ID)
	}
	span.EndDetail(fmt.Sprintf("sweep:m%d:x%d", req.Model, req.Count))
	return resp, nil
}

// ShardStatus is one shard's position in a sweep's progress.
type ShardStatus struct {
	Index int            `json:"index"`
	ID    string         `json:"id"`
	State jobqueue.State `json:"state,omitempty"` // empty: never enqueued
	// Stored reports whether the shard's artifact is already in the
	// store (a stored shard counts toward the merge whatever its job
	// state says).
	Stored bool `json:"stored"`
}

// SweepStatusResponse is a sweep's progress: Ready means every shard
// artifact is stored and /jobs/sweep/result will answer.
type SweepStatusResponse struct {
	Model  int           `json:"model"`
	Count  int           `json:"count"`
	Shards []ShardStatus `json:"shards"`
	Stored int           `json:"stored"`
	Ready  bool          `json:"ready"`
}

func (a *API) sweepStatus(req SweepRequest) (SweepStatusResponse, error) {
	resp := SweepStatusResponse{Model: req.Model, Count: req.Count}
	for i := 0; i < req.Count; i++ {
		id, err := expstore.SweepShardKey(bumdp.IncentiveModel(req.Model), req.Config, i, req.Count)
		if err != nil {
			return SweepStatusResponse{}, err
		}
		s := ShardStatus{Index: i, ID: id}
		if j, ok := a.Queue.Get(id); ok {
			s.State = j.State
		}
		if _, ok := a.Store.Get(id); ok {
			s.Stored = true
			resp.Stored++
		}
		resp.Shards = append(resp.Shards, s)
	}
	resp.Ready = resp.Stored == req.Count
	return resp, nil
}

func (a *API) handleSweepStatus(r *http.Request) (any, error) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	return a.sweepStatus(req)
}

// SweepResultResponse is a completed sweep, merged: the repository's
// standard sweep record plus the rendered table — byte-identical to
// what the single-process sweep paths produce.
type SweepResultResponse struct {
	Record expstore.SweepRecord `json:"record"`
	Table  string               `json:"table"`
}

func (a *API) handleSweepResult(r *http.Request) (any, error) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	status, err := a.sweepStatus(req)
	if err != nil {
		return nil, err
	}
	if !status.Ready {
		return nil, &apiError{http.StatusConflict,
			fmt.Errorf("sweep not ready: %d of %d shards stored", status.Stored, status.Count)}
	}
	model := bumdp.IncentiveModel(req.Model)
	blobs := make([][]byte, req.Count)
	for i, s := range status.Shards {
		blob, ok := a.Store.Get(s.ID)
		if !ok {
			return nil, &apiError{http.StatusConflict, fmt.Errorf("shard %d vanished from the store", i)}
		}
		blobs[i] = blob
	}
	span := a.startSpan(r, "farm.merge")
	cells, err := expstore.MergeShardBlobs(model, req.Config, blobs)
	if err != nil {
		return nil, &apiError{http.StatusInternalServerError, err}
	}
	span.EndDetail(fmt.Sprintf("sweep:m%d:x%d", req.Model, req.Count))
	return SweepResultResponse{
		Record: expstore.NewSweepRecord(model, cells),
		Table:  core.FormatTable(cells, true),
	}, nil
}

type leaseRequest struct {
	Worker   string   `json:"worker"`
	Kinds    []string `json:"kinds,omitempty"`
	TTLMilli int64    `json:"ttl_ms,omitempty"`
}

type leaseResponse struct {
	Job jobqueue.Job `json:"job"`
	OK  bool         `json:"ok"`
}

func (a *API) handleLease(r *http.Request) (any, error) {
	var req leaseRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	job, ok, err := a.Queue.Lease(req.Worker, req.Kinds, time.Duration(req.TTLMilli)*time.Millisecond)
	if errors.Is(err, jobqueue.ErrQuarantined) {
		return nil, err // 403: the worker is quarantined
	}
	if err != nil {
		return nil, &apiError{http.StatusInternalServerError, err}
	}
	return leaseResponse{Job: job, OK: ok}, nil
}

type heartbeatRequest struct {
	ID       string `json:"id"`
	Lease    string `json:"lease"`
	TTLMilli int64  `json:"ttl_ms,omitempty"`
}

func (a *API) handleHeartbeat(r *http.Request) (any, error) {
	var req heartbeatRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if err := a.Queue.Heartbeat(req.ID, req.Lease, time.Duration(req.TTLMilli)*time.Millisecond); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

type completeRequest struct {
	ID     string          `json:"id"`
	Lease  string          `json:"lease"`
	Result json.RawMessage `json:"result"`
}

type completeResponse struct {
	First bool `json:"first"`
}

// handleComplete is the first-VALID-materialization point: the
// submitted bytes must pass the coordinator's prescribed validity
// predicate before the queue's completion gate even sees them, and only
// the first accepted completion writes the result into the store. An
// invalid result is rejected (409, counting against the worker's
// reputation) and the job returns to its retry budget, so a byzantine
// worker can never poison an artifact — at worst it delays one.
// Duplicate deliveries — client retries, redelivered responses — are
// acknowledged without verification or a store write (the artifact is
// already materialized and immutable; a duplicate whose bytes disagree
// with it is only counted, see observe.go). Under a quorum policy the
// completion is a checksum vote: the job completes once Quorum distinct
// workers deliver identical bytes.
func (a *API) handleComplete(r *http.Request) (any, error) {
	var req completeRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Result) == 0 || !json.Valid(req.Result) {
		return nil, errors.New("completion needs a JSON result blob")
	}
	job, ok := a.Queue.Get(req.ID)
	if !ok {
		return nil, jobqueue.ErrUnknownJob
	}
	if job.State == jobqueue.Done {
		// Benign duplicate: acknowledge without re-verifying, but notice
		// when the re-delivered bytes disagree with the materialized
		// artifact — deterministic executors never produce that.
		first, err := a.Queue.Complete(req.ID, req.Lease)
		if err != nil {
			return nil, err
		}
		if stored, found := a.Store.Get(req.ID); found &&
			voteSum(job.Kind, stored) != voteSum(job.Kind, req.Result) {
			duplicateMismatch.Inc()
			if a.Tracer != nil {
				a.Tracer.Emit(obs.Event{Kind: "farm.duplicate_mismatch", Node: req.ID})
			}
		}
		return completeResponse{First: first}, nil
	}
	if err := a.Verifier.Artifact(job.Kind, req.ID, job.Spec, req.Result); err != nil {
		// The predicate refused the bytes: reject the completion (the
		// queue counts it toward the worker's quarantine and requeues
		// the job) and tell the worker why.
		if rejErr := a.Queue.RejectCompletion(req.ID, req.Lease, err.Error()); rejErr != nil {
			return nil, rejErr
		}
		return nil, &apiError{http.StatusConflict, fmt.Errorf("invalid completion: %w", err)}
	}
	first, err := a.Queue.CompleteSum(req.ID, req.Lease, voteSum(job.Kind, req.Result))
	if err != nil {
		return nil, err
	}
	if first {
		span := a.storeSpan(r, req.ID)
		if err := a.Store.Put(req.ID, req.Result); err != nil {
			return nil, &apiError{http.StatusInternalServerError, err}
		}
		span.EndDetail(req.ID)
	}
	return completeResponse{First: first}, nil
}

// voteSum is the checksum a completion compares under — the quorum
// vote and the duplicate-agreement check. It is sha256 over the result
// bytes with run-dependent fields normalized away: the BU solve record
// is the one artifact whose bytes embed wall-clock facts (the solve's
// duration and worker count), and without this normalization two
// honest workers solving the same job would never agree. Every other
// kind's bytes are deterministic and hash as delivered. Normalization
// only feeds the comparison; the bytes materialized are always exactly
// what the winning completion delivered.
func voteSum(kind string, blob []byte) string {
	if kind == expstore.KindBUSolve {
		var rec expstore.BUSolveRecord
		if json.Unmarshal(blob, &rec) == nil {
			rec.Stats.Duration = 0
			rec.Stats.Workers = 0
			if nb, err := json.Marshal(rec); err == nil {
				blob = nb
			}
		}
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// storeSpan parents the materializing store write on the worker's
// delivery span when the completion carries a traceparent, else on the
// job's recorded trace position.
func (a *API) storeSpan(r *http.Request, id string) *obs.Span {
	if a.Tracer == nil {
		return nil
	}
	parent, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		if j, found := a.Queue.Get(id); found {
			parent = obs.SpanContext{TraceID: j.Trace, SpanID: j.ParentSpan}
		}
	}
	return obs.StartSpanFrom(a.Tracer, parent, "store.put")
}

type failRequest struct {
	ID     string `json:"id"`
	Lease  string `json:"lease"`
	Reason string `json:"reason,omitempty"`
}

func (a *API) handleFail(r *http.Request) (any, error) {
	var req failRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if err := a.Queue.Fail(req.ID, req.Lease, req.Reason); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

func (a *API) handleRequeue(r *http.Request) (any, error) {
	var req struct {
		ID string `json:"id"`
	}
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if err := a.Queue.Requeue(req.ID); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

func (a *API) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	job, ok := a.Queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, jobqueue.ErrUnknownJob)
		return
	}
	writeJSON(w, job)
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, a.Queue.Jobs())
}

func (a *API) handleDead(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, a.Queue.Dead())
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, a.Queue.Stats())
}
