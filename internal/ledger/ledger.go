package ledger

import (
	"errors"
	"fmt"

	"buanalysis/internal/chain"
	"buanalysis/internal/tx"
)

// Validation errors.
var (
	ErrBadTxRoot     = errors.New("ledger: header TxRoot does not match transactions")
	ErrBadSize       = errors.New("ledger: header size does not match transactions")
	ErrNoCoinbase    = errors.New("ledger: first transaction must be the coinbase")
	ErrExtraCoinbase = errors.New("ledger: coinbase after the first transaction")
	ErrOversize      = errors.New("ledger: block exceeds the size limit")
	ErrPoW           = errors.New("ledger: proof of work does not meet the difficulty")
)

// FullBlock is a header plus its transactions; Txs[0] is the coinbase.
type FullBlock struct {
	Header *chain.Block
	Txs    []*tx.Transaction
}

// Assemble builds a sealed-size block on the given parent: the header's
// Size and TxRoot are derived from the transactions.
func Assemble(parent *chain.Block, txs []*tx.Transaction, miner string, t float64) *FullBlock {
	var size int64
	for _, txn := range txs {
		size += txn.Size()
	}
	return &FullBlock{
		Header: &chain.Block{
			Parent: parent.ID(),
			Height: parent.Height + 1,
			Size:   size,
			Miner:  miner,
			Time:   t,
			TxRoot: MerkleRoot(txs),
		},
		Txs: txs,
	}
}

// Params configure a Ledger.
type Params struct {
	// Subsidy is the coinbase block reward.
	Subsidy int64
	// MaxBlockSize enforces a prescribed size limit (0 = no limit, BU
	// style: size validity is then judged per node by protocol rules).
	MaxBlockSize int64
	// PoWBits, when positive, requires block hashes to carry that many
	// leading zero bits (see chain.Block.Seal).
	PoWBits uint
	// AcceptBranch, when set, gates chain selection: a strictly longer
	// branch is adopted only if the hook accepts its full header path
	// (genesis first). This is how BU-style per-node validity plugs into
	// the ledger: protocol.BU's AcceptableDepth decides whether an
	// excessive block is buried deeply enough to capitulate to.
	AcceptBranch func(path []*chain.Block) bool
}

// undoRecord lets a connected block be disconnected exactly.
type undoRecord struct {
	spent   []spentEntry
	created []tx.Outpoint
}

type spentEntry struct {
	op  tx.Outpoint
	out tx.Output
}

// Ledger is a full node's state: the block tree, the UTXO set of the
// active chain, and undo data for reorganizations.
type Ledger struct {
	params Params
	store  *chain.Store
	blocks map[chain.ID]*FullBlock
	utxo   *tx.UTXOSet
	head   *chain.Block
	undo   map[chain.ID]*undoRecord
	// Reorgs counts chain switches; DisconnectedTxs counts transactions
	// removed from the ledger by reorgs — each a potential reversed
	// payment, the paper's double-spend measure made concrete.
	Reorgs          int
	DisconnectedTxs int
}

// New creates a ledger rooted at the standard genesis block.
func New(p Params) *Ledger {
	g := chain.Genesis()
	return &Ledger{
		params: p,
		store:  chain.NewStore(g),
		blocks: make(map[chain.ID]*FullBlock),
		utxo:   tx.NewUTXOSet(),
		head:   g,
		undo:   make(map[chain.ID]*undoRecord),
	}
}

// Head returns the active chain tip.
func (l *Ledger) Head() *chain.Block { return l.head }

// UTXO exposes the active chain's UTXO set (read-only use).
func (l *Ledger) UTXO() *tx.UTXOSet { return l.utxo }

// Block returns the stored full block for an id.
func (l *Ledger) Block(id chain.ID) *FullBlock { return l.blocks[id] }

// checkStateless validates everything that does not need the UTXO set.
func (l *Ledger) checkStateless(fb *FullBlock) error {
	if len(fb.Txs) == 0 || !fb.Txs[0].Coinbase() {
		return ErrNoCoinbase
	}
	for _, txn := range fb.Txs[1:] {
		if txn.Coinbase() {
			return ErrExtraCoinbase
		}
	}
	if MerkleRoot(fb.Txs) != fb.Header.TxRoot {
		return ErrBadTxRoot
	}
	var size int64
	for _, txn := range fb.Txs {
		size += txn.Size()
	}
	if size != fb.Header.Size {
		return fmt.Errorf("%w: header %d, transactions %d", ErrBadSize, fb.Header.Size, size)
	}
	if l.params.MaxBlockSize > 0 && size > l.params.MaxBlockSize {
		return fmt.Errorf("%w: %d > %d", ErrOversize, size, l.params.MaxBlockSize)
	}
	if l.params.PoWBits > 0 && !fb.Header.MeetsDifficulty(l.params.PoWBits) {
		return ErrPoW
	}
	return nil
}

// connect applies a block's transactions to the UTXO set, recording undo
// data. On any failure the partial application is rolled back.
func (l *Ledger) connect(fb *FullBlock) error {
	rec := &undoRecord{}
	rollback := func() {
		for i := len(rec.created) - 1; i >= 0; i-- {
			l.utxo.Remove(rec.created[i])
		}
		for i := len(rec.spent) - 1; i >= 0; i-- {
			l.utxo.Put(rec.spent[i].op, rec.spent[i].out)
		}
	}
	var fees int64
	for _, txn := range fb.Txs[1:] {
		fee, err := l.utxo.ValidateTransaction(txn)
		if err != nil {
			rollback()
			return fmt.Errorf("ledger: block %v: %w", fb.Header.ID(), err)
		}
		fees += fee
		for _, in := range txn.Inputs {
			out, _ := l.utxo.Lookup(in.Previous)
			rec.spent = append(rec.spent, spentEntry{in.Previous, out})
			l.utxo.Remove(in.Previous)
		}
		id := txn.TxID()
		for i, out := range txn.Outputs {
			op := tx.Outpoint{TxID: id, Index: uint32(i)}
			l.utxo.Put(op, out)
			rec.created = append(rec.created, op)
		}
	}
	// Coinbase last: its allowance includes this block's fees.
	cb := fb.Txs[0]
	var minted int64
	for _, out := range cb.Outputs {
		if out.Value < 0 {
			rollback()
			return tx.ErrNegativeValue
		}
		minted += out.Value
	}
	if minted > l.params.Subsidy+fees {
		rollback()
		return fmt.Errorf("ledger: coinbase mints %d, allowed %d", minted, l.params.Subsidy+fees)
	}
	id := cb.TxID()
	for i, out := range cb.Outputs {
		op := tx.Outpoint{TxID: id, Index: uint32(i)}
		l.utxo.Put(op, out)
		rec.created = append(rec.created, op)
	}
	l.undo[fb.Header.ID()] = rec
	return nil
}

// disconnect reverses a connected block.
func (l *Ledger) disconnect(id chain.ID) error {
	rec := l.undo[id]
	if rec == nil {
		return fmt.Errorf("ledger: no undo data for %v", id)
	}
	for i := len(rec.created) - 1; i >= 0; i-- {
		l.utxo.Remove(rec.created[i])
	}
	for i := len(rec.spent) - 1; i >= 0; i-- {
		l.utxo.Put(rec.spent[i].op, rec.spent[i].out)
	}
	delete(l.undo, id)
	return nil
}

// AddBlock ingests a block: stateless checks, storage, and — when the
// block's chain is strictly longer than the active one — connection,
// including a full reorganization if it extends a side branch. A block
// whose branch fails stateful validation is rejected and the previous
// head restored.
func (l *Ledger) AddBlock(fb *FullBlock) error {
	if err := l.checkStateless(fb); err != nil {
		return err
	}
	id := fb.Header.ID()
	if err := l.store.Add(fb.Header); err != nil {
		return err
	}
	l.blocks[id] = fb
	if fb.Header.Height <= l.head.Height {
		return nil // side branch, not longer: stored only
	}
	if l.params.AcceptBranch != nil && !l.params.AcceptBranch(l.store.Path(id)) {
		return nil // longer but not acceptable under this node's rules
	}

	// Find the paths to disconnect and connect.
	forkPoint, err := l.store.ForkPoint(l.head.ID(), id)
	if err != nil {
		return err
	}
	var toDisconnect []*chain.Block
	for b := l.head; b.ID() != forkPoint.ID(); b = l.store.Get(b.Parent) {
		toDisconnect = append(toDisconnect, b)
	}
	var toConnect []*FullBlock
	for b := fb.Header; b.ID() != forkPoint.ID(); b = l.store.Get(b.Parent) {
		toConnect = append([]*FullBlock{l.blocks[b.ID()]}, toConnect...)
	}

	for _, b := range toDisconnect {
		if err := l.disconnect(b.ID()); err != nil {
			return err
		}
	}
	for i, nb := range toConnect {
		if nb == nil {
			err = fmt.Errorf("ledger: missing block body on new branch")
		} else {
			err = l.connect(nb)
		}
		if err != nil {
			// Roll the reorg back: disconnect what we connected, then
			// reconnect the old chain (undo data restores it exactly).
			for j := i - 1; j >= 0; j-- {
				if derr := l.disconnect(toConnect[j].Header.ID()); derr != nil {
					return fmt.Errorf("ledger: rollback failed: %v (after %w)", derr, err)
				}
			}
			for k := len(toDisconnect) - 1; k >= 0; k-- {
				ob := l.blocks[toDisconnect[k].ID()]
				if cerr := l.connect(ob); cerr != nil {
					return fmt.Errorf("ledger: restore failed: %v (after %w)", cerr, err)
				}
			}
			// Undo the double-count of disconnections during rollback.
			return fmt.Errorf("ledger: rejecting branch at %v: %w", nb.Header.ID(), err)
		}
	}
	if len(toDisconnect) > 0 {
		l.Reorgs++
		for _, b := range toDisconnect {
			l.DisconnectedTxs += len(l.blocks[b.ID()].Txs) - 1
		}
	}
	l.head = fb.Header
	return nil
}

// Confirmations reports how deep a transaction is in the active chain
// (1 = in the head block), or 0 if it is not on the active chain.
func (l *Ledger) Confirmations(txid tx.ID) int {
	for b := l.head; ; b = l.store.Get(b.Parent) {
		if fb := l.blocks[b.ID()]; fb != nil {
			for _, txn := range fb.Txs {
				if txn.TxID() == txid {
					return l.head.Height - b.Height + 1
				}
			}
		}
		if b.Height == 0 {
			return 0
		}
	}
}
