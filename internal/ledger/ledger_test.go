package ledger

import (
	"errors"
	"testing"
	"testing/quick"

	"buanalysis/internal/tx"
)

func keypair(b byte) tx.Keypair {
	var s [32]byte
	s[0] = b
	return tx.NewKeypair(s)
}

// coinbaseTx mints value to kp with a distinguishing payload.
func coinbaseTx(kp tx.Keypair, value int64, tag byte) *tx.Transaction {
	return &tx.Transaction{
		Outputs: []tx.Output{{Value: value, PubKey: kp.Pub}},
		Payload: []byte{tag},
	}
}

// pay spends prev (worth inValue, owned by src) to dst, with change back
// to src and the given fee.
func pay(t *testing.T, src tx.Keypair, prev tx.Outpoint, inValue, amount, fee int64, dst tx.Keypair) *tx.Transaction {
	t.Helper()
	txn := &tx.Transaction{
		Inputs: []tx.Input{{Previous: prev}},
		Outputs: []tx.Output{
			{Value: amount, PubKey: dst.Pub},
			{Value: inValue - amount - fee, PubKey: src.Pub},
		},
	}
	if err := txn.Sign(0, src.Priv); err != nil {
		t.Fatal(err)
	}
	return txn
}

const subsidy = 50

func TestMerkleRoot(t *testing.T) {
	if MerkleRoot(nil) != [32]byte{} {
		t.Error("empty root should be zero")
	}
	kp := keypair(1)
	txs := []*tx.Transaction{
		coinbaseTx(kp, 50, 0),
		coinbaseTx(kp, 50, 1),
		coinbaseTx(kp, 50, 2),
	}
	root3 := MerkleRoot(txs)
	root2 := MerkleRoot(txs[:2])
	root1 := MerkleRoot(txs[:1])
	if root3 == root2 || root2 == root1 || root3 == root1 {
		t.Error("roots of different sets should differ")
	}
	if root1 != txs[0].TxID() {
		t.Error("single-transaction root should be its id")
	}
	// Order matters.
	swapped := []*tx.Transaction{txs[1], txs[0]}
	if MerkleRoot(swapped) == root2 {
		t.Error("root should depend on order")
	}
}

func TestMerkleProofs(t *testing.T) {
	kp := keypair(1)
	var txs []*tx.Transaction
	for i := 0; i < 7; i++ { // odd count exercises self-pairing
		txs = append(txs, coinbaseTx(kp, int64(50+i), byte(i)))
	}
	root := MerkleRoot(txs)
	for i, txn := range txs {
		proof, ok := Prove(txs, i)
		if !ok {
			t.Fatalf("Prove(%d) failed", i)
		}
		if !proof.Verify(txn.TxID(), root) {
			t.Errorf("proof %d does not verify", i)
		}
		// A proof must not verify a different transaction.
		other := txs[(i+1)%len(txs)]
		if proof.Verify(other.TxID(), root) {
			t.Errorf("proof %d verifies the wrong transaction", i)
		}
	}
	if _, ok := Prove(txs, -1); ok {
		t.Error("Prove accepted negative index")
	}
	if _, ok := Prove(txs, len(txs)); ok {
		t.Error("Prove accepted out-of-range index")
	}
}

// mine assembles and adds a block of the given transactions on the
// current head.
func mine(t *testing.T, l *Ledger, miner string, txs ...*tx.Transaction) *FullBlock {
	t.Helper()
	fb := Assemble(l.Head(), txs, miner, 0)
	if err := l.AddBlock(fb); err != nil {
		t.Fatalf("AddBlock: %v", err)
	}
	return fb
}

func TestBasicChainGrowth(t *testing.T) {
	alice, bob := keypair(1), keypair(2)
	l := New(Params{Subsidy: subsidy})

	cb1 := coinbaseTx(alice, subsidy, 1)
	mine(t, l, "alice", cb1)
	if l.Head().Height != 1 {
		t.Fatalf("head height = %d", l.Head().Height)
	}

	// Spend the coinbase with a fee; the next coinbase may claim it.
	prev := tx.Outpoint{TxID: cb1.TxID(), Index: 0}
	spend := pay(t, alice, prev, subsidy, 30, 2, bob)
	cb2 := coinbaseTx(alice, subsidy+2, 2)
	mine(t, l, "alice", cb2, spend)

	if got := l.Confirmations(spend.TxID()); got != 1 {
		t.Errorf("confirmations = %d, want 1", got)
	}
	if got := l.Confirmations(cb1.TxID()); got != 2 {
		t.Errorf("coinbase confirmations = %d, want 2", got)
	}
	if _, ok := l.UTXO().Lookup(prev); ok {
		t.Error("spent coinbase still unspent")
	}
}

func TestStatelessRejections(t *testing.T) {
	alice := keypair(1)
	l := New(Params{Subsidy: subsidy, MaxBlockSize: 200})

	// No coinbase.
	fb := Assemble(l.Head(), nil, "alice", 0)
	if err := l.AddBlock(fb); !errors.Is(err, ErrNoCoinbase) {
		t.Errorf("no coinbase: %v", err)
	}
	// Second coinbase.
	fb = Assemble(l.Head(), []*tx.Transaction{
		coinbaseTx(alice, subsidy, 1), coinbaseTx(alice, subsidy, 2),
	}, "alice", 0)
	if err := l.AddBlock(fb); !errors.Is(err, ErrExtraCoinbase) {
		t.Errorf("extra coinbase: %v", err)
	}
	// Tampered TxRoot.
	fb = Assemble(l.Head(), []*tx.Transaction{coinbaseTx(alice, subsidy, 1)}, "alice", 0)
	fb.Header.TxRoot[0] ^= 1
	if err := l.AddBlock(fb); !errors.Is(err, ErrBadTxRoot) {
		t.Errorf("bad txroot: %v", err)
	}
	// Tampered size.
	fb = Assemble(l.Head(), []*tx.Transaction{coinbaseTx(alice, subsidy, 1)}, "alice", 0)
	fb.Header.Size++
	if err := l.AddBlock(fb); !errors.Is(err, ErrBadSize) {
		t.Errorf("bad size: %v", err)
	}
	// Oversize.
	big := coinbaseTx(alice, subsidy, 1)
	big.Payload = make([]byte, 300)
	fb = Assemble(l.Head(), []*tx.Transaction{big}, "alice", 0)
	if err := l.AddBlock(fb); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize: %v", err)
	}
}

func TestProofOfWorkRequired(t *testing.T) {
	alice := keypair(1)
	l := New(Params{Subsidy: subsidy, PoWBits: 8})
	fb := Assemble(l.Head(), []*tx.Transaction{coinbaseTx(alice, subsidy, 1)}, "alice", 0)
	if err := l.AddBlock(fb); !errors.Is(err, ErrPoW) && fb.Header.MeetsDifficulty(8) == false {
		if err == nil {
			t.Fatal("accepted unsealed block")
		}
	}
	if err := fb.Header.Seal(8, 1<<22); err != nil {
		t.Fatal(err)
	}
	if err := l.AddBlock(fb); err != nil {
		t.Fatalf("sealed block rejected: %v", err)
	}
}

func TestGreedyCoinbaseRejected(t *testing.T) {
	alice := keypair(1)
	l := New(Params{Subsidy: subsidy})
	fb := Assemble(l.Head(), []*tx.Transaction{coinbaseTx(alice, subsidy+1, 1)}, "alice", 0)
	if err := l.AddBlock(fb); err == nil {
		t.Error("accepted coinbase above subsidy+fees")
	}
	if l.Head().Height != 0 {
		t.Error("invalid block advanced the head")
	}
}

// TestDoubleSpendReorg is the paper's attack made concrete: a merchant
// sees a payment confirmed, a longer branch carrying a conflicting
// payment arrives, and the ledger reverses the original transaction.
func TestDoubleSpendReorg(t *testing.T) {
	attacker, merchant, accomplice := keypair(1), keypair(2), keypair(3)
	l := New(Params{Subsidy: subsidy})

	// Fund the attacker.
	cb := coinbaseTx(attacker, subsidy, 1)
	fund := mine(t, l, "m", cb)
	prev := tx.Outpoint{TxID: cb.TxID(), Index: 0}

	// Branch A: pay the merchant; confirmed by one more block.
	payment := pay(t, attacker, prev, subsidy, 40, 0, merchant)
	mine(t, l, "m", coinbaseTx(merchant, subsidy, 2), payment)
	mine(t, l, "m", coinbaseTx(merchant, subsidy, 3))
	if got := l.Confirmations(payment.TxID()); got != 2 {
		t.Fatalf("merchant sees %d confirmations, want 2", got)
	}

	// Branch B (secret): the same output pays the accomplice instead.
	double := pay(t, attacker, prev, subsidy, 40, 0, accomplice)
	b1 := Assemble(fund.Header, []*tx.Transaction{coinbaseTx(attacker, subsidy, 4), double}, "a", 0)
	if err := l.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2 := Assemble(b1.Header, []*tx.Transaction{coinbaseTx(attacker, subsidy, 5)}, "a", 0)
	if err := l.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	// Still on branch A (equal length does not reorg).
	if l.Confirmations(payment.TxID()) == 0 {
		t.Fatal("reorged on an equal-length branch")
	}
	b3 := Assemble(b2.Header, []*tx.Transaction{coinbaseTx(attacker, subsidy, 6)}, "a", 0)
	if err := l.AddBlock(b3); err != nil {
		t.Fatal(err)
	}

	// The longer branch wins: the merchant's payment is reversed.
	if l.Head().ID() != b3.Header.ID() {
		t.Fatal("head did not switch to the longer branch")
	}
	if got := l.Confirmations(payment.TxID()); got != 0 {
		t.Errorf("reversed payment still has %d confirmations", got)
	}
	if got := l.Confirmations(double.TxID()); got != 3 {
		t.Errorf("double spend has %d confirmations, want 3", got)
	}
	if l.Reorgs != 1 {
		t.Errorf("reorgs = %d, want 1", l.Reorgs)
	}
	if l.DisconnectedTxs != 1 {
		t.Errorf("disconnected txs = %d, want 1 (the merchant's payment)", l.DisconnectedTxs)
	}
	// The merchant's output is gone; the accomplice's exists.
	if _, ok := l.UTXO().Lookup(tx.Outpoint{TxID: payment.TxID(), Index: 0}); ok {
		t.Error("merchant output survived the reorg")
	}
	if _, ok := l.UTXO().Lookup(tx.Outpoint{TxID: double.TxID(), Index: 0}); !ok {
		t.Error("accomplice output missing after the reorg")
	}
}

// TestInvalidBranchRollsBack: a longer branch with an invalid block must
// not corrupt the ledger; the old chain stays active.
func TestInvalidBranchRollsBack(t *testing.T) {
	alice, eve := keypair(1), keypair(2)
	l := New(Params{Subsidy: subsidy})

	cb := coinbaseTx(alice, subsidy, 1)
	fund := mine(t, l, "m", cb)
	mine(t, l, "m", coinbaseTx(alice, subsidy, 2))
	headBefore := l.Head().ID()
	utxoBefore := l.UTXO().Len()

	// Branch with a forged spend inside (eve signs alice's coin).
	forged := &tx.Transaction{
		Inputs:  []tx.Input{{Previous: tx.Outpoint{TxID: cb.TxID(), Index: 0}}},
		Outputs: []tx.Output{{Value: subsidy, PubKey: eve.Pub}},
	}
	if err := forged.Sign(0, eve.Priv); err != nil {
		t.Fatal(err)
	}
	b1 := Assemble(fund.Header, []*tx.Transaction{coinbaseTx(eve, subsidy, 3), forged}, "e", 0)
	if err := l.AddBlock(b1); err != nil {
		t.Fatal(err) // side branch, stored without stateful validation
	}
	b2 := Assemble(b1.Header, []*tx.Transaction{coinbaseTx(eve, subsidy, 4)}, "e", 0)
	if err := l.AddBlock(b2); err == nil {
		t.Fatal("branch with forged transaction accepted")
	}
	if l.Head().ID() != headBefore {
		t.Error("head moved onto an invalid branch")
	}
	if l.UTXO().Len() != utxoBefore {
		t.Errorf("UTXO set changed: %d -> %d", utxoBefore, l.UTXO().Len())
	}
	// The ledger still works afterwards.
	mine(t, l, "m", coinbaseTx(alice, subsidy, 5))
	if l.Head().Height != 3 {
		t.Errorf("head height = %d, want 3", l.Head().Height)
	}
}

// TestMerkleRootCollisionResistance is a property test: different
// transaction payloads never produce the same root (within the sample).
func TestMerkleRootDistinct(t *testing.T) {
	kp := keypair(9)
	seen := make(map[[32]byte]bool)
	prop := func(tags []byte) bool {
		if len(tags) == 0 || len(tags) > 12 {
			return true
		}
		var txs []*tx.Transaction
		for i, tag := range tags {
			txs = append(txs, &tx.Transaction{
				Outputs: []tx.Output{{Value: int64(i), PubKey: kp.Pub}},
				Payload: []byte{tag, byte(i)},
			})
		}
		root := MerkleRoot(txs)
		if seen[root] {
			return false
		}
		seen[root] = true
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
