// Package ledger assembles the full-node substrate: blocks carrying real
// transactions committed by a Merkle root, validated against the UTXO
// set with proof-of-work and size-limit checks, with reorganization
// support (undo records) so that chain switches replay cleanly. It is
// the machinery that makes the paper's double-spending attacks concrete:
// a transaction "reversed" by a reorg is literally removed from the
// ledger here, and its conflicting twin confirmed.
package ledger

import (
	"crypto/sha256"

	"buanalysis/internal/tx"
)

// MerkleRoot computes the Bitcoin-style Merkle root of a transaction
// list: leaves are transaction ids, interior nodes hash concatenated
// children, and an odd node is paired with itself. An empty list has the
// zero root.
func MerkleRoot(txs []*tx.Transaction) [32]byte {
	if len(txs) == 0 {
		return [32]byte{}
	}
	level := make([][32]byte, len(txs))
	for i, t := range txs {
		level[i] = t.TxID()
	}
	for len(level) > 1 {
		var next [][32]byte
		for i := 0; i < len(level); i += 2 {
			j := i + 1
			if j == len(level) {
				j = i // odd node pairs with itself
			}
			var buf [64]byte
			copy(buf[:32], level[i][:])
			copy(buf[32:], level[j][:])
			next = append(next, sha256.Sum256(buf[:]))
		}
		level = next
	}
	return level[0]
}

// MerkleProof is an inclusion proof for one transaction.
type MerkleProof struct {
	// Index is the transaction's position in the block.
	Index int
	// Path lists sibling hashes from leaf to root.
	Path [][32]byte
}

// Prove builds an inclusion proof for the transaction at index i.
func Prove(txs []*tx.Transaction, i int) (MerkleProof, bool) {
	if i < 0 || i >= len(txs) {
		return MerkleProof{}, false
	}
	proof := MerkleProof{Index: i}
	level := make([][32]byte, len(txs))
	for k, t := range txs {
		level[k] = t.TxID()
	}
	pos := i
	for len(level) > 1 {
		sib := pos ^ 1
		if sib >= len(level) {
			sib = pos
		}
		proof.Path = append(proof.Path, level[sib])
		var next [][32]byte
		for k := 0; k < len(level); k += 2 {
			j := k + 1
			if j == len(level) {
				j = k
			}
			var buf [64]byte
			copy(buf[:32], level[k][:])
			copy(buf[32:], level[j][:])
			next = append(next, sha256.Sum256(buf[:]))
		}
		level = next
		pos /= 2
	}
	return proof, true
}

// Verify checks an inclusion proof against a root.
func (p MerkleProof) Verify(txid [32]byte, root [32]byte) bool {
	h := txid
	pos := p.Index
	for _, sib := range p.Path {
		var buf [64]byte
		if pos%2 == 0 {
			copy(buf[:32], h[:])
			copy(buf[32:], sib[:])
		} else {
			copy(buf[:32], sib[:])
			copy(buf[32:], h[:])
		}
		h = sha256.Sum256(buf[:])
		pos /= 2
	}
	return h == root
}
