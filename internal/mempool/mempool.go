// Package mempool implements the transaction pool and block assembly:
// pending transactions ordered by fee rate, and greedy fee-maximizing
// selection under a block size limit. It is the substrate behind the
// paper's fee reasoning — Section 2.1's transaction fees, Section 2.3's
// fee/orphan-rate trade-off (Rizun's fee market), and Section 6.4's
// observation that lower fees shift the mix toward many small
// transactions.
package mempool

import (
	"container/heap"
	"errors"
	"fmt"

	"buanalysis/internal/tx"
)

// Entry is a pooled transaction with its validated fee.
type Entry struct {
	Tx   *tx.Transaction
	Fee  int64
	Size int64
}

// FeeRate is the entry's fee per byte.
func (e Entry) FeeRate() float64 {
	if e.Size == 0 {
		return 0
	}
	return float64(e.Fee) / float64(e.Size)
}

// entryHeap is a max-heap by fee rate (ties: smaller size first, then
// insertion order for determinism).
type entryHeap []*heapItem

type heapItem struct {
	Entry
	seq int
}

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	ri, rj := h[i].FeeRate(), h[j].FeeRate()
	if ri != rj {
		return ri > rj
	}
	if h[i].Size != h[j].Size {
		return h[i].Size < h[j].Size
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(*heapItem)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Pool is a validating mempool bound to a UTXO view.
type Pool struct {
	utxo *tx.UTXOSet
	byID map[tx.ID]*heapItem
	heap entryHeap
	seq  int
	// TotalSize is the summed size of pooled transactions.
	TotalSize int64
}

// New creates a pool validating against the given UTXO view. The view is
// not mutated by Add; it represents the confirmed chain state.
func New(utxo *tx.UTXOSet) *Pool {
	return &Pool{utxo: utxo, byID: make(map[tx.ID]*heapItem)}
}

// Len reports the number of pooled transactions.
func (p *Pool) Len() int { return len(p.byID) }

// Add validates a transaction against the pool's UTXO view and admits
// it. Conflicting spends of the same output are first-come-first-served.
func (p *Pool) Add(t *tx.Transaction) error {
	id := t.TxID()
	if _, ok := p.byID[id]; ok {
		return fmt.Errorf("mempool: duplicate transaction %v", id)
	}
	fee, err := p.utxo.ValidateTransaction(t)
	if err != nil {
		return fmt.Errorf("mempool: rejecting %v: %w", id, err)
	}
	// Reject conflicts with already-pooled spends.
	for _, in := range t.Inputs {
		for _, it := range p.byID {
			for _, pin := range it.Tx.Inputs {
				if pin.Previous == in.Previous {
					return fmt.Errorf("mempool: %v conflicts with pooled %v on %v",
						id, it.Tx.TxID(), in.Previous)
				}
			}
		}
	}
	it := &heapItem{Entry: Entry{Tx: t, Fee: fee, Size: t.Size()}, seq: p.seq}
	p.seq++
	p.byID[id] = it
	heap.Push(&p.heap, it)
	p.TotalSize += it.Size
	return nil
}

// Assembly is the result of block template construction.
type Assembly struct {
	Transactions []*tx.Transaction
	TotalFees    int64
	TotalSize    int64
}

// Assemble greedily selects pooled transactions by fee rate under the
// size limit, without removing them from the pool. Greedy-by-rate is the
// standard approximation used by Bitcoin Core's block assembler.
func (p *Pool) Assemble(sizeLimit int64) (Assembly, error) {
	if sizeLimit <= 0 {
		return Assembly{}, errors.New("mempool: non-positive size limit")
	}
	// Copy the heap so assembly does not disturb the pool.
	tmp := make(entryHeap, len(p.heap))
	copy(tmp, p.heap)
	heap.Init(&tmp)
	var out Assembly
	for tmp.Len() > 0 {
		it := heap.Pop(&tmp).(*heapItem)
		if out.TotalSize+it.Size > sizeLimit {
			continue // try smaller, lower-rate transactions
		}
		out.Transactions = append(out.Transactions, it.Tx)
		out.TotalFees += it.Fee
		out.TotalSize += it.Size
	}
	return out, nil
}

// Confirm removes transactions included in a block and applies them to
// the pool's UTXO view, returning the total fees collected.
func (p *Pool) Confirm(txs []*tx.Transaction) (int64, error) {
	var fees int64
	for _, t := range txs {
		fee, err := p.utxo.Apply(t)
		if err != nil {
			return fees, fmt.Errorf("mempool: confirming %v: %w", t.TxID(), err)
		}
		fees += fee
		if it, ok := p.byID[t.TxID()]; ok {
			p.TotalSize -= it.Size
			delete(p.byID, t.TxID())
		}
	}
	p.Prune()
	return fees, nil
}

// Prune drops every pooled transaction that no longer validates against
// the UTXO view (because a block — possibly from a reorg — spent its
// inputs or confirmed it) and rebuilds the heap. Use it after the UTXO
// view changed by means other than Confirm, e.g. a ledger reorg.
func (p *Pool) Prune() {
	p.heap = p.heap[:0]
	for id, it := range p.byID {
		if _, err := p.utxo.ValidateTransaction(it.Tx); err != nil {
			p.TotalSize -= it.Size
			delete(p.byID, id)
			continue
		}
		p.heap = append(p.heap, it)
	}
	heap.Init(&p.heap)
}

// Drop removes a transaction by id if pooled (used when a block
// containing it connects through the ledger rather than Confirm).
func (p *Pool) Drop(id tx.ID) {
	it, ok := p.byID[id]
	if !ok {
		return
	}
	p.TotalSize -= it.Size
	delete(p.byID, id)
	p.heap = p.heap[:0]
	for _, rest := range p.byID {
		p.heap = append(p.heap, rest)
	}
	heap.Init(&p.heap)
}
