package mempool

import (
	"testing"

	"buanalysis/internal/tx"
)

// wallet funds n independent outputs of `value` for key kp and returns
// the UTXO set and the outpoints.
func wallet(t *testing.T, kp tx.Keypair, n int, value int64) (*tx.UTXOSet, []tx.Outpoint) {
	t.Helper()
	u := tx.NewUTXOSet()
	var ops []tx.Outpoint
	for i := 0; i < n; i++ {
		cb := &tx.Transaction{
			Outputs: []tx.Output{{Value: value, PubKey: kp.Pub}},
			Payload: []byte{byte(i)}, // distinct ids
		}
		if err := u.ApplyCoinbase(cb, value); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, tx.Outpoint{TxID: cb.TxID(), Index: 0})
	}
	return u, ops
}

func keypair(b byte) tx.Keypair {
	var s [32]byte
	s[0] = b
	return tx.NewKeypair(s)
}

// payment builds a signed transaction spending op with the given fee and
// payload padding.
func payment(t *testing.T, kp tx.Keypair, op tx.Outpoint, value, fee int64, pad int) *tx.Transaction {
	t.Helper()
	txn := &tx.Transaction{
		Inputs:  []tx.Input{{Previous: op}},
		Outputs: []tx.Output{{Value: value - fee, PubKey: kp.Pub}},
		Payload: make([]byte, pad),
	}
	if err := txn.Sign(0, kp.Priv); err != nil {
		t.Fatal(err)
	}
	return txn
}

func TestAddValidatesAndRejects(t *testing.T) {
	kp := keypair(1)
	u, ops := wallet(t, kp, 2, 100)
	p := New(u)

	good := payment(t, kp, ops[0], 100, 10, 0)
	if err := p.Add(good); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := p.Add(good); err == nil {
		t.Error("accepted duplicate")
	}
	// Conflicting spend of the same outpoint.
	conflict := payment(t, kp, ops[0], 100, 20, 0)
	if err := p.Add(conflict); err == nil {
		t.Error("accepted conflicting spend")
	}
	// Invalid transaction (spends unknown output).
	bogus := payment(t, kp, tx.Outpoint{Index: 9}, 100, 1, 0)
	if err := p.Add(bogus); err == nil {
		t.Error("accepted invalid transaction")
	}
	if p.Len() != 1 {
		t.Errorf("pool size = %d, want 1", p.Len())
	}
}

func TestAssembleMaximizesFeeRate(t *testing.T) {
	kp := keypair(1)
	u, ops := wallet(t, kp, 3, 1000)
	p := New(u)

	// Three transactions with descending fee rates; the padded one is big.
	small := payment(t, kp, ops[0], 1000, 100, 0) // high rate
	big := payment(t, kp, ops[1], 1000, 150, 600) // big but lower rate
	tiny := payment(t, kp, ops[2], 1000, 1, 0)    // lowest rate
	for _, txn := range []*tx.Transaction{tiny, big, small} {
		if err := p.Add(txn); err != nil {
			t.Fatal(err)
		}
	}

	// Limit that fits everything.
	all, err := p.Assemble(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Transactions) != 3 {
		t.Fatalf("assembled %d txs, want 3", len(all.Transactions))
	}
	if all.Transactions[0].TxID() != small.TxID() {
		t.Errorf("highest fee rate not first")
	}
	if all.TotalFees != 251 {
		t.Errorf("total fees = %d, want 251", all.TotalFees)
	}

	// Limit that excludes the big transaction: greedy skips it and still
	// takes the tiny one.
	limited, err := p.Assemble(small.Size() + tiny.Size())
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Transactions) != 2 || limited.TotalFees != 101 {
		t.Errorf("limited assembly = %d txs, fees %d; want 2 txs, fees 101",
			len(limited.Transactions), limited.TotalFees)
	}

	if _, err := p.Assemble(0); err == nil {
		t.Error("accepted zero size limit")
	}
	// Assembly must not consume the pool.
	if p.Len() != 3 {
		t.Errorf("assembly consumed the pool: %d left", p.Len())
	}
}

func TestConfirmRemovesAndRevalidates(t *testing.T) {
	kp := keypair(1)
	u, ops := wallet(t, kp, 2, 1000)
	p := New(u)

	a := payment(t, kp, ops[0], 1000, 10, 0)
	b := payment(t, kp, ops[1], 1000, 20, 0)
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(b); err != nil {
		t.Fatal(err)
	}

	fees, err := p.Confirm([]*tx.Transaction{a})
	if err != nil {
		t.Fatal(err)
	}
	if fees != 10 {
		t.Errorf("fees = %d, want 10", fees)
	}
	if p.Len() != 1 {
		t.Errorf("pool size = %d, want 1", p.Len())
	}
	// Confirming a conflicting block (an external tx spending b's input)
	// drops b from the pool.
	ext := payment(t, kp, ops[1], 1000, 30, 1)
	fees, err = p.Confirm([]*tx.Transaction{ext})
	if err != nil {
		t.Fatal(err)
	}
	if fees != 30 {
		t.Errorf("fees = %d, want 30", fees)
	}
	if p.Len() != 0 {
		t.Errorf("conflicted transaction still pooled")
	}
	// Confirming an invalid transaction errors.
	if _, err := p.Confirm([]*tx.Transaction{a}); err == nil {
		t.Error("confirmed an already-spent transaction")
	}
}

func TestTotalSizeTracking(t *testing.T) {
	kp := keypair(1)
	u, ops := wallet(t, kp, 2, 1000)
	p := New(u)
	a := payment(t, kp, ops[0], 1000, 10, 100)
	b := payment(t, kp, ops[1], 1000, 10, 200)
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(b); err != nil {
		t.Fatal(err)
	}
	if p.TotalSize != a.Size()+b.Size() {
		t.Errorf("TotalSize = %d, want %d", p.TotalSize, a.Size()+b.Size())
	}
	if _, err := p.Confirm([]*tx.Transaction{a}); err != nil {
		t.Fatal(err)
	}
	if p.TotalSize != b.Size() {
		t.Errorf("TotalSize after confirm = %d, want %d", p.TotalSize, b.Size())
	}
}
