// Command butables regenerates every table and figure of the paper's
// evaluation:
//
//	butables -table 2          Table 2 (relative revenue, compliant Alice)
//	butables -table 3          Table 3 (absolute revenue + Bitcoin baseline)
//	butables -table 4          Table 4 (orphans per attacker block)
//	butables -figure 1         Figure 1 (sticky gate walkthrough)
//	butables -figure 2         Figure 2 (the two attack phases)
//	butables -figure 3         Figure 3 (two orphans for one attacker block)
//	butables -figure 4         Figure 4 (block size increasing game)
//	butables -counter          Section 6.3 countermeasure simulation
//	butables -all              everything
//
// -fast lowers the solver tolerances (1e-4/1e-8 instead of 1e-5/1e-9),
// which is indistinguishable at the paper's print precision and several
// times faster; -setting restricts Tables 2-4 to one setting.
//
// -cache-dir answers repeat table cells from the experiment store
// shared with cmd/bumdp and cmd/buserve; -json emits Tables 2-4 in the
// store's serialization instead of text (figures are text-only).
//
// -trace writes every table cell's solver convergence events as JSONL
// (cell values are bit-identical either way); -metrics-dump prints the
// run's metrics registry as JSON to stderr on exit. -cpuprofile and
// -memprofile write pprof profiles of the run (see EXPERIMENTS.md for
// the profiling recipe).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"buanalysis/internal/bumdp"
	"buanalysis/internal/chain"
	"buanalysis/internal/cliflag"
	"buanalysis/internal/core"
	"buanalysis/internal/countermeasure"
	"buanalysis/internal/expstore"
	"buanalysis/internal/games"
	"buanalysis/internal/mdp"
	"buanalysis/internal/netsim"
	"buanalysis/internal/nodecost"
	"buanalysis/internal/obs"
	parpkg "buanalysis/internal/par"
	"buanalysis/internal/protocol"
)

const mb = 1 << 20

func main() {
	log.SetFlags(0)
	log.SetPrefix("butables: ")
	var (
		table    = flag.Int("table", 0, "reproduce table 2, 3 or 4")
		figure   = flag.Int("figure", 0, "reproduce figure 1, 2, 3 or 4")
		counter  = flag.Bool("counter", false, "run the Section 6.3 countermeasure simulation")
		ncost    = flag.Bool("nodecost", false, "print the Section 6.4 node-cost curve")
		all      = flag.Bool("all", false, "reproduce everything")
		fast     = flag.Bool("fast", false, "lower solver tolerances (same values at print precision)")
		setting  = flag.Int("setting", 0, "restrict tables to setting 1 or 2 (default both)")
		full     = flag.Bool("full", false, "sweep the full grid in setting 2 as well (some cells take minutes)")
		workers  = cliflag.WorkersFlag(flag.CommandLine, "table cells solved concurrently")
		par      = cliflag.ParFlag(flag.CommandLine)
		jsonOut  = flag.Bool("json", false, "emit Tables 2-4 as JSON (the experiment-store encoding; figures stay text)")
		cacheDir = flag.String("cache-dir", "", "experiment store directory; repeat cells answer from cache")
		trace    = cliflag.TraceFlag(flag.CommandLine)
		mdump    = cliflag.MetricsDumpFlag(flag.CommandLine)
		version  = cliflag.VersionFlag(flag.CommandLine)
	)
	cpuprof, memprof := cliflag.ProfileFlags(flag.CommandLine)
	logFormat, logLevel := cliflag.LogFlags(flag.CommandLine)
	flag.Parse()
	cliflag.HandleVersion(*version)
	if _, err := cliflag.SetupLog("butables", *logFormat, *logLevel); err != nil {
		log.Fatal(err)
	}
	stopProf, err := cliflag.StartProfiles(*cpuprof, *memprof)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()
	fullGrid = *full
	jsonTables = *jsonOut

	store, err = expstore.Open(expstore.Config{Dir: *cacheDir})
	if err != nil {
		log.Fatal(err)
	}
	tracer, closeTrace, err := cliflag.OpenTrace(*trace)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			log.Fatal(err)
		}
	}()
	if *mdump {
		reg := obs.NewRegistry()
		store.RegisterMetrics(reg)
		mdp.Observe(reg)
		parpkg.Observe(reg)
		defer cliflag.DumpMetrics(reg)
	}

	cfg := core.SweepConfig{Workers: *workers, InnerParallelism: *par, Tracer: tracer}
	if *fast {
		cfg.RatioTol, cfg.Epsilon = 1e-4, 1e-8
	}
	switch *setting {
	case 0:
	case 1:
		cfg.Settings = []bumdp.Setting{bumdp.Setting1}
	case 2:
		cfg.Settings = []bumdp.Setting{bumdp.Setting2}
	default:
		log.Fatalf("unknown setting %d", *setting)
	}

	ran := false
	if *all || *table == 2 {
		table2(cfg)
		ran = true
	}
	if *all || *table == 3 {
		table3(cfg)
		ran = true
	}
	if *all || *table == 4 {
		table4(cfg)
		ran = true
	}
	if *all || *figure == 1 {
		figure1()
		ran = true
	}
	if *all || *figure == 2 {
		figure2()
		ran = true
	}
	if *all || *figure == 3 {
		figure3()
		ran = true
	}
	if *all || *figure == 4 {
		figure4()
		ran = true
	}
	if *all || *counter {
		counterSim()
		ran = true
	}
	if *all || *ncost {
		nodeCostCurve()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// fullGrid widens the setting-2 sweeps beyond the paper's printed cells.
var fullGrid bool

// jsonTables switches Tables 2-4 to the experiment-store JSON encoding.
var jsonTables bool

// store is the experiment result store every table cell is answered
// from (memory-only unless -cache-dir is given).
var store *expstore.Store

// paperNotes are the reference values printed under each table.
var paperNotes = map[int]string{
	2: "(paper: cells not shown equal alpha; e.g. set1 25% 1:1 = 26.24%, 2:3 = 27.39%)",
	3: "(paper set2: 0.16 0.27 0.31 0.27 0.16 at alpha=10%; Bitcoin: 0.1/0.15/0.2/0.38 and 0.11/0.18/0.30/0.52)",
	4: "(paper: 0.61 0.83 1.22 1.50 1.76 1.77 1.62 1.30 1.06 for setting 1)",
}

// tableJSON is the -json form of one reproduced table, built from the
// experiment store's record types.
type tableJSON struct {
	Table           int                       `json:"table"`
	Title           string                    `json:"title"`
	Sweeps          []expstore.SweepRecord    `json:"sweeps"`
	BitcoinBaseline []expstore.BaselineRecord `json:"bitcoin_baseline,omitempty"`
}

// runTable reproduces paper table n through the experiment store.
func runTable(n int, cfg core.SweepConfig) {
	t, err := core.PaperTable(n, cfg, fullGrid)
	if err != nil {
		log.Fatal(err)
	}
	var cells []core.Cell
	var sweeps []expstore.SweepRecord
	for _, job := range t.Jobs {
		cs := expstore.Sweep(store, job.Model, job.Cfg)
		cells = append(cells, cs...)
		sweeps = append(sweeps, expstore.NewSweepRecord(job.Model, cs))
	}
	var baseline []core.BitcoinBaselineCell
	if t.Bitcoin {
		baseline = expstore.CachedBitcoinBaseline(store, nil, nil)
	}
	if jsonTables {
		out := tableJSON{Table: t.N, Title: t.Title, Sweeps: sweeps}
		if t.Bitcoin {
			out.BitcoinBaseline = expstore.NewBaselineRecords(baseline)
		}
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(blob, '\n'))
		return
	}
	fmt.Printf("=== %s ===\n", t.Title)
	fmt.Print(core.FormatTable(cells, t.Percent))
	if t.Bitcoin {
		fmt.Println()
		fmt.Print(core.FormatBitcoinBaseline(baseline))
	}
	fmt.Println(paperNotes[n])
	fmt.Println()
}

func table2(cfg core.SweepConfig) { runTable(2, cfg) }

func table3(cfg core.SweepConfig) { runTable(3, cfg) }

func table4(cfg core.SweepConfig) { runTable(4, cfg) }

// figure1 walks the three panels of Figure 1 through the protocol rules.
func figure1() {
	fmt.Println("=== Figure 1: a BU miner's choice of parent block (AD = 3) ===")
	bu := protocol.BU{EB: mb, AD: 3}
	mk := func(sizes ...int64) []*chain.Block {
		path := []*chain.Block{chain.Genesis()}
		for _, s := range sizes {
			p := path[len(path)-1]
			path = append(path, &chain.Block{Parent: p.ID(), Height: p.Height + 1, Size: s, Miner: "m"})
		}
		return path
	}
	upper := mk(mb, mb, 8*mb)
	fmt.Printf("upper: chain [1MB 1MB 8MB]: acceptable depth %d of %d (excessive block rejected)\n",
		bu.AcceptableDepth(upper), len(upper)-1)
	middle := mk(mb, mb, 8*mb, mb, mb)
	gate := bu.Gate(middle)
	fmt.Printf("middle: two blocks mined after it: acceptable depth %d of %d; sticky gate open=%v, limit=%dMB\n",
		bu.AcceptableDepth(middle), len(middle)-1, gate.Open, gate.EffectiveLimit>>20)
	sizes := []int64{mb, mb, 8 * mb}
	for i := 0; i < protocol.DefaultGateWindow; i++ {
		sizes = append(sizes, mb)
	}
	lower := mk(sizes...)
	gate = bu.Gate(lower)
	fmt.Printf("lower: after %d consecutive non-excessive blocks: gate open=%v, limit=%dMB\n\n",
		protocol.DefaultGateWindow, gate.Open, gate.EffectiveLimit>>20)
}

// figure2 replays the two phases inside the network simulator.
func figure2() {
	fmt.Println("=== Figure 2: the two phases of the attack (AD = 3) ===")
	bob := &netsim.Node{Name: "bob", Power: 0.5, Rules: protocol.BU{EB: mb, AD: 3}, MG: mb / 2}
	carol := &netsim.Node{Name: "carol", Power: 0.5, Rules: protocol.BU{EB: 8 * mb, AD: 3}, MG: mb / 2}
	net, err := netsim.New(netsim.Config{Seed: 1}, []*netsim.Node{bob, carol})
	if err != nil {
		log.Fatal(err)
	}
	inject := func(parent *chain.Block, size int64, miner string) *chain.Block {
		b := &chain.Block{Parent: parent.ID(), Height: parent.Height + 1, Size: size, Miner: miner}
		for _, n := range net.Nodes() {
			netsim.Deliver(n, b)
		}
		return b
	}
	c1 := inject(net.Genesis(), mb/2, "carol")
	split := inject(c1, 8*mb, "alice")
	fmt.Printf("phase 1: alice mines an 8MB (=EB_C) block: bob target height %d, carol target height %d (split)\n",
		bob.Target().Height, carol.Target().Height)
	s2 := inject(split, mb/2, "carol")
	s3 := inject(s2, mb/2, "carol")
	fmt.Printf("chain 2 reaches AD=3: bob target height %d (capitulated, sticky gate open)\n", bob.Target().Height)
	inject(s3, 8*mb+1, "alice")
	fmt.Printf("phase 2: alice mines a block >EB_C: bob target height %d, carol target height %d (split the other way)\n\n",
		bob.Target().Height, carol.Target().Height)
}

// figure3 shows one attacker block orphaning two compliant blocks.
func figure3() {
	fmt.Println("=== Figure 3: two compliant blocks orphaned by one attacker block (AD = 3) ===")
	bob := &netsim.Node{Name: "bob", Power: 0.5, Rules: protocol.BU{EB: mb, AD: 3, NoGate: true}, MG: mb / 2}
	carol := &netsim.Node{Name: "carol", Power: 0.5, Rules: protocol.BU{EB: 8 * mb, AD: 3, NoGate: true}, MG: mb / 2}
	net, err := netsim.New(netsim.Config{Seed: 1}, []*netsim.Node{bob, carol})
	if err != nil {
		log.Fatal(err)
	}
	inject := func(parent *chain.Block, size int64, miner string) *chain.Block {
		b := &chain.Block{Parent: parent.ID(), Height: parent.Height + 1, Size: size, Miner: miner}
		for _, n := range net.Nodes() {
			netsim.Deliver(n, b)
		}
		return b
	}
	c0 := inject(net.Genesis(), mb/2, "carol")
	split := inject(c0, 8*mb, "alice")
	b1 := inject(c0, mb/2, "bob")
	inject(b1, mb/2, "bob")
	s2 := inject(split, mb/2, "carol")
	s3 := inject(s2, mb/2, "carol")
	acc, err := bob.Store().Account(s3.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain 2 wins; orphaned: bob=%d; main chain: alice=%d carol=%d\n\n",
		acc.Orphaned["bob"], acc.MainChain["alice"], acc.MainChain["carol"])
}

// figure4 plays the block size increasing game of Figure 4.
func figure4() {
	fmt.Println("=== Figure 4: block size increasing game (powers 10/20/30/40%) ===")
	g, err := games.NewBlockSizeGame([]float64{0.1, 0.2, 0.3, 0.4}, []int64{1 * mb, 2 * mb, 4 * mb, 8 * mb})
	if err != nil {
		log.Fatal(err)
	}
	res := g.Play()
	for i, r := range res.Rounds {
		fmt.Printf("round %d: raise to MPB of group %d: yes=%.0f%% no=%.0f%% -> passed=%v\n",
			i+1, r.Lowest+2, r.YesPower*100, r.NoPower*100, r.Passed)
	}
	fmt.Printf("survivors: groups %d..%d; utilities %v\n\n", res.Survivors+1, len(res.Utilities), res.Utilities)
}

// nodeCostCurve prints the Section 6.4 trade-off: the fraction of a
// Croman-calibrated public-node population that sustains each block
// size, at a market-fee and a low-fee transaction mix.
func nodeCostCurve() {
	fmt.Println("=== Section 6.4: public nodes online vs sustained block size ===")
	pop := nodecost.SyntheticPopulation(1000)
	market := nodecost.ProfileForFeeLevel(1e-6)
	lowFee := nodecost.ProfileForFeeLevel(1e-8)
	const month = 4320
	fmt.Printf("%10s %14s %14s\n", "block size", "market fees", "low fees")
	for _, size := range []int64{1 * mb, 2 * mb, 4 * mb, 8 * mb, 16 * mb, 32 * mb} {
		fm, err := pop.OnlineFraction(size, market, 600, month, 1e9)
		if err != nil {
			log.Fatal(err)
		}
		fl, err := pop.OnlineFraction(size, lowFee, 600, month, 1e9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8dMB %13.1f%% %13.1f%%\n", size/mb, fm*100, fl*100)
	}
	sup, err := pop.SupportedSize(0.90, market, 600, month, 1e9, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("largest size keeping 90%% of nodes online: %.1fMB (Croman et al.: ~4MB)\n", float64(sup)/mb)
	fmt.Println("(32MB is what an open sticky gate admits; the curve is why that matters)")
	fmt.Println()
}

// counterSim demonstrates the Section 6.3 countermeasure.
func counterSim() {
	fmt.Println("=== Section 6.3 countermeasure: miner-vote limit adjustment with a prescribed BVC ===")
	rng := rand.New(rand.NewSource(1))
	groups := []countermeasure.MinerGroup{
		{Power: 0.85, Target: 2 * mb},
		{Power: 0.15, Target: 1 * mb},
	}
	res, err := countermeasure.Simulate(countermeasure.Config{}, groups, 8, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("85%% of power wants 2MB, 15%% satisfied at 1MB: final %.2fMB\n", float64(res.Final)/mb)
	fmt.Println("  (one step passes while the 15% are content; above 1MB they vote Decrease,")
	fmt.Println("   crossing the 10% veto threshold - slow nodes throttle the increase)")
	groups[1].Target = mb / 2 // the 15% veto from the start
	res, err = countermeasure.Simulate(countermeasure.Config{}, groups, 8, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a 15%% veto from the start: final %.2fMB (no increase at all)\n", float64(res.Final)/mb)
	s, err := countermeasure.BuildSchedule(countermeasure.Config{}, res.Votes)
	if err != nil {
		log.Fatal(err)
	}
	h, _ := s.Changes()
	fmt.Printf("schedule re-derived from on-chain votes alone: %d changes (BVC preserved)\n\n", len(h))
}
