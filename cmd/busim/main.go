// Command busim runs the simulators: a Monte-Carlo replay of the optimal
// attack policy against the exact model dynamics (-mode mc, the
// precision cross-check of the MDP values), a full discrete-event
// network simulation with per-node validity rules (-mode net, the
// end-to-end check from the protocol rules alone), or the seeded
// fault-injection corpus with invariant checking (-mode faults).
//
//	busim -mode mc  -alpha 0.25 -ratio 1:1 -model compliant -steps 1000000
//	busim -mode net -alpha 0.25 -ratio 1:1 -blocks 20000
//	busim -mode faults -scenario all
//	busim -mode faults -scenario bu-attack-drop -seed 99 -trace run.jsonl
//	busim -list-scenarios
//
// In faults mode every executed scenario is checked against the full
// protocol-invariant suite (internal/invariant); any violation is
// printed and the exit status is nonzero. -seed overrides the
// scenario's pinned seed to explore other schedules; replaying with the
// pinned seed reproduces the trace bit-identically.
//
// -trace writes the run's structured events as JSONL — the solve's
// convergence iterations, then mc.split/mc.resolve/mc.done replay
// events (mc mode) or sim.block/sim.relay/sim.accept/sim.reject/
// sim.fork/sim.reorg network events (net and faults modes, which also
// carry sim.drop/sim.partition/sim.heal/sim.crash/sim.restart fault
// events). Tracing never changes results. -metrics-dump prints the
// run's metrics registry as JSON to stderr on exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"buanalysis/internal/bumdp"
	"buanalysis/internal/cliflag"
	"buanalysis/internal/faultsim"
	"buanalysis/internal/invariant"
	"buanalysis/internal/mdp"
	"buanalysis/internal/montecarlo"
	"buanalysis/internal/netsim"
	"buanalysis/internal/obs"
	parpkg "buanalysis/internal/par"
	"buanalysis/internal/protocol"
)

const mb = 1 << 20

func main() {
	log.SetFlags(0)
	log.SetPrefix("busim: ")
	var (
		mode    = flag.String("mode", "mc", "mc (exact-dynamics Monte Carlo) | net (network simulation) | faults (fault-injection corpus)")
		alpha   = flag.Float64("alpha", 0.25, "attacker power share")
		ratio   = flag.String("ratio", "1:1", "Bob:Carol split")
		model   = flag.String("model", "compliant", "compliant | noncompliant | nonprofit")
		setting = flag.Int("setting", 1, "1 or 2 (mc mode)")
		steps   = flag.Int("steps", 1_000_000, "mc mode: steps per batch")
		batches = flag.Int("batches", 8, "mc mode: independent batches")
		blocks  = flag.Int("blocks", 20_000, "net mode: mining rounds")
		seed    = flag.Int64("seed", 1, "random seed")
		scen    = flag.String("scenario", "all", "faults mode: corpus scenario name, or all")
		list    = flag.Bool("list-scenarios", false, "print the fault scenario corpus and exit")
		trace   = cliflag.TraceFlag(flag.CommandLine)
		mdump   = cliflag.MetricsDumpFlag(flag.CommandLine)
		version = cliflag.VersionFlag(flag.CommandLine)
	)
	logFormat, logLevel := cliflag.LogFlags(flag.CommandLine)
	flag.Parse()
	cliflag.HandleVersion(*version)
	if _, err := cliflag.SetupLog("busim", *logFormat, *logLevel); err != nil {
		log.Fatal(err)
	}

	if *list {
		for _, sc := range faultsim.Corpus() {
			fmt.Printf("%-26s seed=%-4d blocks=%-5d expect=%s\n",
				sc.Name, sc.Seed, sc.Blocks, strings.Join(sc.Expect, ","))
		}
		return
	}

	tracer, closeTrace, err := cliflag.OpenTrace(*trace)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			log.Fatal(err)
		}
	}()
	if *mdump {
		reg := obs.NewRegistry()
		mdp.Observe(reg)
		parpkg.Observe(reg)
		defer cliflag.DumpMetrics(reg)
	}

	// Faults mode needs no MDP solve; handle it before the solver runs.
	if *mode == "faults" {
		seedOverride := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedOverride = true
			}
		})
		if !runFaults(*scen, *seed, seedOverride, tracer) {
			// log.Fatal skips the deferred close; flush the trace first so
			// the failing run can be replayed from it.
			if err := closeTrace(); err != nil {
				log.Print(err)
			}
			log.Fatal("invariant violations detected")
		}
		return
	}

	beta, gamma := split(*alpha, *ratio)
	m := parseModel(*model)

	a, err := bumdp.New(bumdp.Params{
		Alpha: *alpha, Beta: beta, Gamma: gamma,
		Setting: bumdp.Setting(*setting), Model: m,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solving MDP (%d states)...\n", len(a.States))
	res, err := a.SolveWith(bumdp.SolveOptions{Tracer: tracer})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MDP optimal utility: %.5f\n", res.Utility)

	switch *mode {
	case "mc":
		sum, err := montecarlo.CrossValidateTraced(a, res.Policy, *steps, *batches, *seed, 0, tracer)
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := sum.CI95()
		fmt.Printf("monte carlo (%d x %d steps): mean %.5f, 95%% CI [%.5f, %.5f]\n",
			*batches, *steps, sum.Mean, lo, hi)
		if res.Utility >= lo && res.Utility <= hi {
			fmt.Println("MDP value inside the simulated confidence interval: PASS")
		} else {
			fmt.Println("MDP value outside the simulated confidence interval: INVESTIGATE")
		}
	case "net":
		runNet(a, res.Policy, *alpha, beta, gamma, *blocks, *seed, tracer)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// runFaults executes one corpus scenario (or all of them), checks the
// invariant suite on each run, and reports success.
func runFaults(name string, seed int64, seedOverride bool, tracer obs.Tracer) bool {
	var scenarios []faultsim.Scenario
	if name == "all" {
		scenarios = faultsim.Corpus()
	} else {
		sc, ok := faultsim.Named(name)
		if !ok {
			log.Fatalf("unknown scenario %q (see -list-scenarios)", name)
		}
		scenarios = []faultsim.Scenario{sc}
	}
	ok := true
	for _, sc := range scenarios {
		if seedOverride {
			sc.Seed = seed
		}
		rep, err := faultsim.Run(sc, tracer)
		if err != nil {
			log.Fatal(err)
		}
		vs := invariant.Check(rep)
		status := "ok"
		if len(vs) > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", len(vs))
			ok = false
		}
		fmt.Printf("%-26s seed=%-4d mined=%-5d drops=%-4d dups=%-4d crashlost=%-4d orphans=%-4d splits=%-4d %s\n",
			sc.Name, sc.Seed, rep.BlocksMined, rep.Drops, rep.Dups, rep.CrashLost, rep.Orphans, rep.Splits, status)
		for _, v := range vs {
			fmt.Printf("  %s\n", v)
		}
	}
	return ok
}

func split(alpha float64, ratio string) (float64, float64) {
	parts := strings.SplitN(ratio, ":", 2)
	if len(parts) != 2 {
		log.Fatalf("bad ratio %q", ratio)
	}
	rb, err1 := strconv.ParseFloat(parts[0], 64)
	rg, err2 := strconv.ParseFloat(parts[1], 64)
	if err1 != nil || err2 != nil || rb <= 0 || rg <= 0 {
		log.Fatalf("bad ratio %q", ratio)
	}
	rest := 1 - alpha
	b := rest * rb / (rb + rg)
	return b, rest - b
}

func parseModel(s string) bumdp.IncentiveModel {
	switch s {
	case "compliant":
		return bumdp.Compliant
	case "noncompliant":
		return bumdp.NonCompliant
	case "nonprofit":
		return bumdp.NonProfit
	}
	log.Fatalf("unknown model %q", s)
	return 0
}

func runNet(a *bumdp.Analysis, policy []int, alpha, beta, gamma float64, blocks int, seed int64, tracer obs.Tracer) {
	ad := a.Params.AD
	bob := &netsim.Node{Name: "bob", Power: beta,
		Rules: protocol.BU{EB: mb, AD: ad, NoGate: true}, MG: mb / 2}
	carol := &netsim.Node{Name: "carol", Power: gamma,
		Rules: protocol.BU{EB: 8 * mb, AD: ad, NoGate: true}, MG: mb / 2}
	strat := &netsim.SplitterStrategy{
		Bob: bob, Carol: carol, SplitSize: 8 * mb, NormalSize: mb / 2, AD: ad,
		Decide: netsim.PolicyDecider(a, policy),
	}
	alice := &netsim.Node{Name: "alice", Power: alpha,
		Rules: protocol.BU{EB: 8 * mb, AD: ad, NoGate: true}, MG: mb / 2, Strategy: strat}
	net, err := netsim.New(netsim.Config{Seed: seed, Tracer: tracer}, []*netsim.Node{bob, carol, alice})
	if err != nil {
		log.Fatal(err)
	}
	net.Run(blocks)
	acc, err := net.Account()
	if err != nil {
		log.Fatal(err)
	}
	main, orphans := 0, 0
	for _, n := range acc.MainChain {
		main += n
	}
	for _, n := range acc.Orphaned {
		orphans += n
	}
	fmt.Printf("network simulation: %d rounds (%d skipped), %d splits\n",
		blocks, net.RoundsSkipped, strat.Splits)
	fmt.Printf("main chain %d blocks, orphaned %d\n", main, orphans)
	if main > 0 {
		fmt.Printf("alice relative revenue: %.5f (alpha = %.4f)\n",
			float64(acc.MainChain["alice"])/float64(main), alpha)
	}
	aliceBlocks := acc.MainChain["alice"] + acc.Orphaned["alice"]
	if aliceBlocks > 0 {
		fmt.Printf("orphaned compliant blocks per alice block: %.4f\n",
			float64(orphans-acc.Orphaned["alice"])/float64(aliceBlocks))
	}
}
