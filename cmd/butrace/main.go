// Command butrace merges the JSONL trace files a distributed farm run
// leaves behind — the coordinator's and each worker's — and
// reconstructs the cross-process span trees: one tree per trace, one
// trace per client operation, covering enqueue, queue wait, worker
// execution, solve, and store materialization.
//
//	butrace coordinator.jsonl worker1.jsonl worker2.jsonl
//
// The default report is each completed job's critical-path breakdown
// (queue wait, lease-to-start, solve, store put, other) with the
// components summing to the job's total wall-clock, plus per-kind
// latency attribution. -tree renders the span trees themselves; -json
// emits the full report as JSON; -check verifies the structural
// invariants (every completed job's path whole, no orphan spans,
// causal stamps) and exits nonzero on violations — the mode the CI
// farm smoke runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"buanalysis/internal/cliflag"
	"buanalysis/internal/tracetree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("butrace: ")
	var (
		jsonOut = flag.Bool("json", false, "emit the report as JSON")
		tree    = flag.Bool("tree", false, "render the reconstructed span trees")
		check   = flag.Bool("check", false, "verify trace invariants; exit 1 on violations")
		tol     = flag.Duration("tol", 250*time.Millisecond, "clock-skew tolerance for -check causality")
		version = cliflag.VersionFlag(flag.CommandLine)
	)
	logFormat, logLevel := cliflag.LogFlags(flag.CommandLine)
	flag.Parse()
	cliflag.HandleVersion(*version)
	if _, err := cliflag.SetupLog("butrace", *logFormat, *logLevel); err != nil {
		log.Fatal(err)
	}
	if flag.NArg() == 0 {
		log.Fatal("usage: butrace [-json|-tree|-check] trace.jsonl [trace.jsonl ...]")
	}

	events, err := tracetree.Load(flag.Args()...)
	if err != nil {
		log.Fatal(err)
	}
	trees := tracetree.Build(events)

	if *check {
		problems := tracetree.Check(trees, *tol)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "FAIL:", p)
		}
		rep := tracetree.Analyze(trees)
		fmt.Printf("checked %d trace(s), %d span(s), %d completed job(s): %d problem(s)\n",
			rep.Traces, rep.Spans, len(rep.Jobs), len(problems))
		if len(problems) > 0 {
			os.Exit(1)
		}
		return
	}
	if *tree {
		for _, t := range trees {
			fmt.Printf("trace %s (%d spans)\n", t.TraceID, len(t.Spans))
			for _, r := range t.Roots {
				printNode(r, 1)
			}
			for _, o := range t.Orphans {
				fmt.Printf("  ORPHAN (parent %s missing):\n", o.Event.ParentID)
				printNode(o, 2)
			}
		}
		return
	}

	rep := tracetree.Analyze(trees)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	printReport(rep)
}

func printNode(n *tracetree.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	subject := ""
	if n.Event.Node != "" {
		subject = " " + n.Event.Node
	}
	fmt.Printf("%s%s%s  %.2fms\n", indent, n.Name(), subject, n.Event.DurMS)
	if len(n.Points) > 0 {
		counts := map[string]int{}
		for _, p := range n.Points {
			counts[p.Kind]++
		}
		var kinds []string
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s×%d", k, counts[k]))
		}
		fmt.Printf("%s  · %s\n", indent, strings.Join(parts, ", "))
	}
	for _, c := range n.Children {
		printNode(c, depth+1)
	}
}

func printReport(rep tracetree.Report) {
	fmt.Printf("%d trace(s), %d span(s), %d point event(s), %d completed job(s)\n\n",
		rep.Traces, rep.Spans, rep.Events, len(rep.Jobs))
	if len(rep.Jobs) > 0 {
		fmt.Printf("%-44s %-10s %10s %10s %10s %10s %10s %10s\n",
			"job", "worker", "queue", "dispatch", "solve", "put", "other", "total")
		for _, j := range rep.Jobs {
			id := j.ID
			if len(id) > 44 {
				id = id[:41] + "..."
			}
			fmt.Printf("%-44s %-10s %9.1fms %9.1fms %9.1fms %9.1fms %9.1fms %9.1fms\n",
				id, j.Worker, j.QueueWaitMS, j.LeaseToStartMS, j.SolveMS, j.StorePutMS, j.OtherMS, j.TotalMS)
		}
		t := rep.Totals
		fmt.Printf("%-44s %-10s %9.1fms %9.1fms %9.1fms %9.1fms %9.1fms %9.1fms\n",
			"TOTAL", "", t.QueueWaitMS, t.LeaseToStartMS, t.SolveMS, t.StorePutMS, t.OtherMS, t.TotalMS)
		if t.TotalMS > 0 {
			fmt.Printf("\ncritical path: queue %.1f%%, dispatch %.1f%%, solve %.1f%%, put %.1f%%, other %.1f%%\n",
				100*t.QueueWaitMS/t.TotalMS, 100*t.LeaseToStartMS/t.TotalMS,
				100*t.SolveMS/t.TotalMS, 100*t.StorePutMS/t.TotalMS, 100*t.OtherMS/t.TotalMS)
		}
	}
	if rep.MergeMS > 0 {
		fmt.Printf("sweep merge: %.1fms\n", rep.MergeMS)
	}
	if len(rep.ByKind) > 0 {
		var kinds []string
		for k := range rep.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Printf("\n%-24s %8s %12s %12s\n", "kind", "count", "total", "max")
		for _, k := range kinds {
			ks := rep.ByKind[k]
			fmt.Printf("%-24s %8d %10.1fms %10.1fms\n", k, ks.Count, ks.TotalMS, ks.MaxMS)
		}
	}
}
