// Command bunode runs a miniature currency network of full nodes on
// localhost: real Ed25519 transactions, Merkle-committed blocks, toy
// proof of work, mempools, and gossip over TCP. With -split it gives the
// nodes different block size limits and walks through the ledger split:
// the same coin confirmed to two different merchants on two nodes of one
// network.
//
//	bunode                 mine a few blocks and settle a payment
//	bunode -split          demonstrate the BU ledger split
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"buanalysis/internal/cliflag"
	"buanalysis/internal/fullnode"
	"buanalysis/internal/ledger"
	"buanalysis/internal/tx"
)

const subsidy = 50

func keypair(b byte) tx.Keypair {
	var s [32]byte
	s[0] = b
	return tx.NewKeypair(s)
}

func wait(cond func() bool, what string) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %s", what)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bunode: ")
	split := flag.Bool("split", false, "run the BU ledger-split scenario")
	version := cliflag.VersionFlag(flag.CommandLine)
	logFormat, logLevel := cliflag.LogFlags(flag.CommandLine)
	flag.Parse()
	cliflag.HandleVersion(*version)
	if _, err := cliflag.SetupLog("bunode", *logFormat, *logLevel); err != nil {
		log.Fatal(err)
	}
	if *split {
		runSplit()
		return
	}
	runPayment()
}

func node(name string, key tx.Keypair, limit int64) *fullnode.Node {
	n, err := fullnode.New(fullnode.Config{
		Name: name, Key: key, Subsidy: subsidy,
		MaxBlockSize: limit, PoWBits: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	return n
}

func runPayment() {
	minerKey, aliceKey := keypair(1), keypair(2)
	miner := node("miner", minerKey, 1<<20)
	wallet := node("wallet", aliceKey, 1<<20)
	defer miner.Close()
	defer wallet.Close()

	addr, err := miner.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := wallet.Dial(addr.String()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miner on %s, wallet connected\n", addr)

	fund, err := miner.Mine()
	if err != nil {
		log.Fatal(err)
	}
	wait(func() bool { return wallet.Head().Height == 1 }, "funding sync")
	fmt.Printf("block 1 mined and synced; miner balance %d\n", wallet.Balance(minerKey.Pub))

	payment := &tx.Transaction{
		Inputs: []tx.Input{{Previous: tx.Outpoint{TxID: fund.Txs[0].TxID(), Index: 0}}},
		Outputs: []tx.Output{
			{Value: 30, PubKey: aliceKey.Pub},
			{Value: subsidy - 30 - 2, PubKey: minerKey.Pub},
		},
	}
	if err := payment.Sign(0, minerKey.Priv); err != nil {
		log.Fatal(err)
	}
	if err := wallet.SubmitTx(payment); err != nil {
		log.Fatal(err)
	}
	wait(func() bool { return miner.MempoolSize() == 1 }, "tx gossip")
	if _, err := miner.Mine(); err != nil {
		log.Fatal(err)
	}
	wait(func() bool { return wallet.Confirmations(payment.TxID()) == 1 }, "confirmation")
	fmt.Printf("payment confirmed; alice balance %d, fee claimed by the miner\n",
		wallet.Balance(aliceKey.Pub))
}

func runSplit() {
	attacker := keypair(1)
	m1, m2 := keypair(2), keypair(3)
	alice := node("alice", attacker, 8<<20)
	bob := node("bob", keypair(4), 1<<20)
	carol := node("carol", keypair(5), 8<<20)
	defer alice.Close()
	defer bob.Close()
	defer carol.Close()

	addrB, err := bob.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addrC, err := carol.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range []string{addrB.String(), addrC.String()} {
		if err := alice.Dial(a); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("bob (limit 1MB) on %s, carol (limit 8MB) on %s\n", addrB, addrC)

	fund, err := alice.Mine()
	if err != nil {
		log.Fatal(err)
	}
	wait(func() bool { return bob.Head().Height == 1 && carol.Head().Height == 1 }, "funding sync")
	coin := tx.Outpoint{TxID: fund.Txs[0].TxID(), Index: 0}
	fmt.Println("funding block synced to both nodes")

	pay1 := &tx.Transaction{
		Inputs:  []tx.Input{{Previous: coin}},
		Outputs: []tx.Output{{Value: subsidy, PubKey: m1.Pub}},
		Payload: make([]byte, 2<<20),
	}
	if err := pay1.Sign(0, attacker.Priv); err != nil {
		log.Fatal(err)
	}
	cb := &tx.Transaction{Outputs: []tx.Output{{Value: subsidy, PubKey: attacker.Pub}}, Payload: []byte("big")}
	big := ledger.Assemble(alice.Head(), []*tx.Transaction{cb, pay1}, "alice", 0)
	if err := big.Header.Seal(4, 1<<22); err != nil {
		log.Fatal(err)
	}
	if err := alice.SubmitBlock(big); err != nil {
		log.Fatal(err)
	}
	wait(func() bool { return carol.Head().ID() == big.Header.ID() }, "carol adopting the big block")
	fmt.Printf("2MB block: carol at height %d, bob still at height %d\n",
		carol.Head().Height, bob.Head().Height)

	pay2 := &tx.Transaction{
		Inputs:  []tx.Input{{Previous: coin}},
		Outputs: []tx.Output{{Value: subsidy, PubKey: m2.Pub}},
	}
	if err := pay2.Sign(0, attacker.Priv); err != nil {
		log.Fatal(err)
	}
	if err := bob.SubmitTx(pay2); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Mine(); err != nil {
		log.Fatal(err)
	}
	wait(func() bool {
		return carol.Confirmations(pay1.TxID()) >= 1 && bob.Confirmations(pay2.TxID()) >= 1
	}, "divergent confirmations")

	fmt.Println()
	fmt.Printf("carol's ledger: merchant1 = %d, merchant2 = %d\n",
		carol.Balance(m1.Pub), carol.Balance(m2.Pub))
	fmt.Printf("bob's ledger:   merchant1 = %d, merchant2 = %d\n",
		bob.Balance(m1.Pub), bob.Balance(m2.Pub))
	fmt.Println("\nthe same coin is confirmed to two different merchants on one network:")
	fmt.Println("without a prescribed block validity consensus there is no single ledger.")
}
