// Command bugames analyzes the Section 5 games for an arbitrary mining
// power distribution:
//
//	bugames -powers 0.1,0.2,0.3,0.4           block size increasing game
//	bugames -powers 0.3,0.3,0.4 -eb           EB choosing game equilibria
//
// Powers are listed per miner group in increasing order of maximum
// profitable block size.
//
// -trace writes game progress (game.round votes, game.equilibrium
// profiles) as JSONL; -metrics-dump prints the run's metrics registry
// as JSON to stderr on exit.
package main

import (
	"flag"
	"fmt"
	"log"

	"buanalysis/internal/cliflag"
	"buanalysis/internal/games"
	"buanalysis/internal/obs"
	parpkg "buanalysis/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bugames: ")
	var (
		powersFlag = flag.String("powers", "0.1,0.2,0.3,0.4", "comma-separated mining power shares")
		eb         = flag.Bool("eb", false, "analyze the EB choosing game instead of the block size game")
		choices    = flag.Int("choices", 2, "number of candidate EB values (EB game)")
		workers    = cliflag.WorkersFlag(flag.CommandLine, "equilibrium-search worker count")
		trace      = cliflag.TraceFlag(flag.CommandLine)
		mdump      = cliflag.MetricsDumpFlag(flag.CommandLine)
		version    = cliflag.VersionFlag(flag.CommandLine)
	)
	logFormat, logLevel := cliflag.LogFlags(flag.CommandLine)
	flag.Parse()
	cliflag.HandleVersion(*version)
	if _, err := cliflag.SetupLog("bugames", *logFormat, *logLevel); err != nil {
		log.Fatal(err)
	}

	powers, err := cliflag.ParsePowers(*powersFlag)
	if err != nil {
		log.Fatal(err)
	}
	tracer, closeTrace, err := cliflag.OpenTrace(*trace)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			log.Fatal(err)
		}
	}()
	if *mdump {
		reg := obs.NewRegistry()
		parpkg.Observe(reg)
		defer cliflag.DumpMetrics(reg)
	}

	if *eb {
		ebGame(powers, *choices, *workers, tracer)
		return
	}
	blockSizeGame(powers, tracer)
}

func ebGame(powers []float64, choices, workers int, tracer obs.Tracer) {
	g, err := games.NewEBChoosingGame(powers, choices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EB choosing game: %d miners, %d candidate EBs\n", len(powers), choices)
	for c := 0; c < choices; c++ {
		ok, err := g.IsNashEquilibrium(games.Uniform(len(powers), c))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  all miners choose EB%d: Nash equilibrium = %v\n", c, ok)
	}
	eqs, err := g.PureNashEquilibriaWorkers(workers)
	if err != nil {
		fmt.Printf("  full enumeration skipped: %v\n", err)
		return
	}
	fmt.Printf("  pure Nash equilibria (%d):\n", len(eqs))
	for _, eq := range eqs {
		u, _ := g.Utilities(eq)
		fmt.Printf("    profile %v utilities %v\n", eq, u)
		if tracer != nil {
			var sum float64
			for _, v := range u {
				sum += v
			}
			tracer.Emit(obs.Event{Kind: "game.equilibrium", Value: sum, Detail: fmt.Sprint(eq)})
		}
	}
}

func blockSizeGame(powers []float64, tracer obs.Tracer) {
	g, err := games.NewBlockSizeGame(powers, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block size increasing game: %d groups, powers %v\n", len(powers), powers)
	fmt.Printf("initial set stable (no forced increase): %v\n", g.AllStable())
	res := g.Play()
	for i, r := range res.Rounds {
		fmt.Printf("round %d: raise past group %d's MPB: yes=%.1f%% no=%.1f%% passed=%v\n",
			i+1, r.Lowest+1, r.YesPower*100, r.NoPower*100, r.Passed)
		if tracer != nil {
			detail := "failed"
			if r.Passed {
				detail = "passed"
			}
			tracer.Emit(obs.Event{Kind: "game.round", Step: i + 1, Value: r.YesPower, Detail: detail})
		}
	}
	fmt.Printf("survivors: groups %d..%d of %d\n", res.Survivors+1, len(powers), len(powers))
	fmt.Printf("terminal utilities: %v\n", res.Utilities)
	if tracer != nil {
		var sum float64
		for _, v := range res.Utilities {
			sum += v
		}
		tracer.Emit(obs.Event{
			Kind: "game.equilibrium", Step: len(res.Rounds), Value: sum,
			Detail: fmt.Sprintf("survivors %d..%d", res.Survivors+1, len(powers)),
		})
	}
	eliminated := res.Survivors
	if eliminated > 0 {
		fmt.Printf("=> %d group(s) forced out of business (Analytical Result 5)\n", eliminated)
	} else {
		fmt.Println("=> stable: consensus on MG/EB can hold for this distribution")
	}
}
