// Command bunet demonstrates the paper's central hazard over real TCP
// sockets: it starts a BU network on localhost — Bob with a small EB,
// Carol with a large EB, Alice attacking — relays blocks with Bitcoin's
// inv/getdata gossip, and narrates the ledger split as it happens.
//
//	bunet                 run the scripted phase-1 attack
//	bunet -ad 6           use a deeper acceptance depth
//	bunet -crash          afterwards, crash bob and recover him from
//	                      his persisted chain snapshot
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"buanalysis/internal/cliflag"
	"buanalysis/internal/p2p"
	"buanalysis/internal/protocol"
)

const mb = 1 << 20

func main() {
	log.SetFlags(0)
	log.SetPrefix("bunet: ")
	ad := flag.Int("ad", 3, "excessive acceptance depth for Bob and Carol")
	crash := flag.Bool("crash", false, "crash bob after the attack and recover him from his chain snapshot")
	version := cliflag.VersionFlag(flag.CommandLine)
	logFormat, logLevel := cliflag.LogFlags(flag.CommandLine)
	flag.Parse()
	cliflag.HandleVersion(*version)
	if _, err := cliflag.SetupLog("bunet", *logFormat, *logLevel); err != nil {
		log.Fatal(err)
	}

	mk := func(name string, eb int64) *p2p.Node {
		n, err := p2p.NewNode(p2p.Config{
			Name:   name,
			Rules:  protocol.BU{EB: eb, AD: *ad},
			Signal: p2p.Signal{EB: eb, AD: *ad},
		})
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	bob := mk("bob", mb)
	carol := mk("carol", 8*mb)
	alice := mk("alice", 8*mb)
	defer bob.Close()
	defer carol.Close()
	defer alice.Close()

	addrB, err := bob.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addrC, err := carol.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	for _, dial := range []struct {
		node *p2p.Node
		addr string
	}{
		{alice, addrB.String()},
		{alice, addrC.String()},
		{bob, addrC.String()},
	} {
		if err := dial.node.Dial(dial.addr); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("bob listening on %s (EB=1MB), carol on %s (EB=8MB), AD=%d\n",
		addrB, addrC, *ad)

	wait := func(cond func() bool, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		log.Fatalf("timed out waiting for %s", what)
	}

	status := func(stage string) {
		fmt.Printf("%-34s bob at height %d, carol at height %d\n",
			stage+":", bob.Target().Height, carol.Target().Height)
	}

	alice.MineOn(mb / 2)
	wait(func() bool { return bob.Target().Height == 1 && carol.Target().Height == 1 }, "prefix sync")
	status("common prefix")

	alice.MineOn(8 * mb)
	wait(func() bool { return carol.Target().Height == 2 }, "carol adopting the split block")
	status("alice mines an 8MB block")
	fmt.Println("  -> the ledgers have diverged: same wire network, two blockchains")

	for i := 0; i < *ad-1; i++ {
		carol.MineOn(mb / 2)
	}
	want := 1 + *ad
	wait(func() bool { return bob.Target().Height == want }, "bob capitulating")
	status(fmt.Sprintf("carol buries it %d deep", *ad))
	fmt.Println("  -> bob accepted the excessive block; every block he mined meanwhile is orphaned")

	sigs := bob.PeerSignals()
	fmt.Printf("bob's view of peer signals: %v\n", sigs)

	if !*crash {
		return
	}

	// Crash/recovery demo: bob's process dies, the network keeps mining,
	// and a new process rebuilt from his persisted chain state redials
	// and catches up.
	snapshot := bob.Blocks()
	preCrash := bob.Target().Height
	if err := bob.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob crashes: %d blocks persisted, tip height %d\n", len(snapshot), preCrash)

	carol.MineOn(mb / 2)
	carol.MineOn(mb / 2)
	fmt.Printf("network mines on without him: carol at height %d\n", carol.Target().Height)

	revived, err := p2p.NewRecoveredNode(p2p.Config{
		Name:   "bob",
		Rules:  protocol.BU{EB: mb, AD: *ad},
		Signal: p2p.Signal{EB: mb, AD: *ad},
	}, snapshot)
	if err != nil {
		log.Fatal(err)
	}
	defer revived.Close()
	fmt.Printf("bob restarts from the snapshot at height %d\n", revived.Target().Height)
	if revived.Target().Height != preCrash {
		log.Fatalf("recovery lost chain state: height %d, want %d", revived.Target().Height, preCrash)
	}

	if err := revived.Dial(addrC.String()); err != nil {
		log.Fatal(err)
	}
	wait(func() bool { return revived.Target().Height == carol.Target().Height }, "bob catching up")
	fmt.Printf("bob redials carol and catches up: height %d\n", revived.Target().Height)
	fmt.Println("  -> crash, restart, recovery: chain state survives, the gossip layer fills the gap")
}
