package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"buanalysis/internal/bumdp"
	"buanalysis/internal/core"
	"buanalysis/internal/expstore"
)

// fastSolve is a /solve query with lowered tolerances so tests stay
// quick; the cache semantics under test are tolerance-independent.
const fastSolve = "/solve?alpha=0.25&ratio=1:1&model=compliant&setting=1&ratio_tol=1e-4&epsilon=1e-8"

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	store, err := expstore.Open(expstore.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(store, nil, 2, 1, nil, nil, nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if string(body) != "ok\n" {
		t.Fatalf("body = %q, want %q", body, "ok\n")
	}
}

// TestSolveMissThenHit proves the acceptance criterion that a cache-hit
// response is byte-identical to the original solve-on-miss response.
func TestSolveMissThenHit(t *testing.T) {
	srv, ts := newTestServer(t)

	resp1, body1 := get(t, ts.URL+fastSolve)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first status = %d, body %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", h)
	}

	resp2, body2 := get(t, ts.URL+fastSolve)
	if h := resp2.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("hit body differs from miss body:\nmiss: %s\nhit:  %s", body1, body2)
	}

	var rec expstore.BUSolveRecord
	if err := json.Unmarshal(body1, &rec); err != nil {
		t.Fatalf("response is not a BUSolveRecord: %v", err)
	}
	if rec.Utility <= 0 || rec.States == 0 {
		t.Fatalf("implausible record: %+v", rec)
	}
	if st := srv.store.Stats(); st.Solves != 1 {
		t.Fatalf("store solves = %d, want 1", st.Solves)
	}
}

// TestSolveSingleflight proves that N concurrent identical requests
// trigger exactly one solve.
func TestSolveSingleflight(t *testing.T) {
	srv, ts := newTestServer(t)

	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + fastSolve)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	if st := srv.store.Stats(); st.Solves != 1 {
		t.Fatalf("store solves = %d after %d concurrent requests, want 1", st.Solves, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

func TestSolveBitcoin(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/solve?model=bitcoin&alpha=0.25&tie=0.5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rec expstore.BitcoinSolveRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Params.Alpha != 0.25 || rec.Utility <= 0 {
		t.Fatalf("implausible baseline record: %+v", rec)
	}
	resp2, _ := get(t, ts.URL+"/solve?model=bitcoin&alpha=0.25&tie=0.5")
	if h := resp2.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", h)
	}
}

func TestSolveBadParams(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"/solve?alpha=bogus",
		"/solve?alpha=0.25&ratio=nonsense",
		"/solve?model=unknown",
		"/solve?alpha=0.25&beta=0.5&gamma=0.5", // shares sum past 1
		"/solve?setting=7",
		"/sweep?model=unknown",
		"/sweep?setting=9",
	} {
		resp, body := get(t, ts.URL+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", q, resp.StatusCode, body)
		}
	}
}

// TestSweepTableMatchesDirect proves the served table equals the
// formatting of a direct core sweep, and that the warm pass is a hit.
func TestSweepTableMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep solve in -short mode")
	}
	srv, ts := newTestServer(t)

	const q = "/sweep?model=compliant&setting=1&fast=1&format=table"
	resp1, body1 := get(t, ts.URL+q)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("cold X-Cache = %q, want miss", h)
	}

	cfg := core.SweepConfig{
		Settings: []bumdp.Setting{bumdp.Setting1},
		RatioTol: 1e-4, Epsilon: 1e-8,
		Workers: 2, InnerParallelism: 1,
		// The store solves cells independently cold; compare against the
		// matching NoChain sweep, which is bit-identical to it (the
		// default warm-chained path agrees only within RatioTol).
		NoChain: true,
	}
	want := core.FormatTable(core.Sweep(bumdp.Compliant, cfg), true)
	if string(body1) != want {
		t.Fatalf("served table differs from direct sweep:\nserved:\n%s\ndirect:\n%s", body1, want)
	}

	solves := srv.store.Stats().Solves
	resp2, body2 := get(t, ts.URL+q)
	if h := resp2.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("warm X-Cache = %q, want hit", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("warm sweep table differs from cold sweep table")
	}
	if got := srv.store.Stats().Solves; got != solves {
		t.Fatalf("warm sweep ran %d extra solves", got-solves)
	}

	// The JSON form of the same sweep is also fully cached.
	resp3, body3 := get(t, ts.URL+"/sweep?model=compliant&setting=1&fast=1")
	if h := resp3.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("json sweep X-Cache = %q, want hit", h)
	}
	var rec expstore.SweepRecord
	if err := json.Unmarshal(body3, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ModelName != bumdp.Compliant.String() || len(rec.Cells) == 0 {
		t.Fatalf("implausible sweep record: model %q, %d cells", rec.ModelName, len(rec.Cells))
	}
}

func TestTableEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("table solve in -short mode")
	}
	_, ts := newTestServer(t)

	resp, body := get(t, ts.URL+"/tables/4?fast=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "Table 4") {
		t.Fatalf("table body missing title:\n%s", body)
	}

	resp2, body2 := get(t, ts.URL+"/tables/4?fast=1&format=json")
	if h := resp2.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("warm table X-Cache = %q, want hit", h)
	}
	var tr tableResponse
	if err := json.Unmarshal(body2, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Table != 4 || len(tr.Sweeps) == 0 {
		t.Fatalf("implausible table response: %+v", tr)
	}

	resp3, _ := get(t, ts.URL+"/tables/99")
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table status = %d, want 404", resp3.StatusCode)
	}
	resp4, _ := get(t, ts.URL+"/tables/bogus")
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric table status = %d, want 400", resp4.StatusCode)
	}
}

// TestStatsz proves /statsz reports request counts, hit/miss ratios,
// in-flight gauges and latency quantiles per endpoint.
func TestStatsz(t *testing.T) {
	_, ts := newTestServer(t)

	get(t, ts.URL+fastSolve)
	get(t, ts.URL+fastSolve)
	get(t, ts.URL+fastSolve)
	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/solve?alpha=bogus")

	resp, body := get(t, ts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st statszResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz not JSON: %v\n%s", err, body)
	}

	solve, ok := st.Endpoints["GET /solve"]
	if !ok {
		t.Fatalf("statsz missing GET /solve endpoint: %s", body)
	}
	if solve.Count != 4 {
		t.Errorf("solve count = %d, want 4", solve.Count)
	}
	if solve.Errors != 1 {
		t.Errorf("solve errors = %d, want 1", solve.Errors)
	}
	if solve.Hits != 2 || solve.Misses != 1 {
		t.Errorf("solve hits/misses = %d/%d, want 2/1", solve.Hits, solve.Misses)
	}
	if want := 2.0 / 3.0; solve.HitRatio != want {
		t.Errorf("solve hit ratio = %v, want %v", solve.HitRatio, want)
	}
	if solve.InFlight != 0 {
		t.Errorf("solve in-flight = %d, want 0", solve.InFlight)
	}
	if solve.Latency.Samples != 4 {
		t.Errorf("solve latency samples = %d, want 4", solve.Latency.Samples)
	}
	if solve.Latency.P50ms < 0 || solve.Latency.P95ms < solve.Latency.P50ms || solve.Latency.P99ms < solve.Latency.P95ms {
		t.Errorf("latency quantiles not ordered: %+v", solve.Latency)
	}

	if hz := st.Endpoints["GET /healthz"]; hz.Count != 1 {
		t.Errorf("healthz count = %d, want 1", hz.Count)
	}
	if st.Store.Solves != 1 {
		t.Errorf("store solves = %d, want 1", st.Store.Solves)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v, want > 0", st.UptimeSeconds)
	}
}

// TestMetricsEndpoint proves /metrics serves Prometheus text exposition
// covering the store, the server's own endpoints, and the solver.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	get(t, ts.URL+fastSolve) // miss → one real solve behind the metrics
	get(t, ts.URL+fastSolve) // hit

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE expstore_hits_total counter",
		"expstore_hits_total 1",
		"expstore_solves_total 1",
		"# TYPE buserve_requests_total counter",
		`buserve_requests_total{endpoint="GET /solve"} 2`,
		`buserve_cache_hits_total{endpoint="GET /solve"} 1`,
		"# TYPE buserve_request_seconds histogram",
		`buserve_request_seconds_bucket{endpoint="GET /solve",le="+Inf"} 2`,
		"# TYPE mdp_solves_total counter",
		"buserve_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The solve above ran real solver sweeps, so mdp counters moved.
	if strings.Contains(text, "mdp_solves_total 0\n") {
		t.Error("mdp_solves_total still 0 after a served solve")
	}
}

// TestDebugVars proves /debug/vars serves the registry as JSON.
func TestDebugVars(t *testing.T) {
	_, ts := newTestServer(t)
	get(t, ts.URL+fastSolve)

	resp, body := get(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"expstore_solves_total", "buserve_requests_total", "mdp_solves_total", "par_runs_total"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
}

// TestStatszShapeStable pins the raw /statsz JSON shape: the migration
// of its internals onto the metrics registry must not change a single
// field name or nesting level that pre-registry clients depend on.
func TestStatszShapeStable(t *testing.T) {
	_, ts := newTestServer(t)
	get(t, ts.URL+fastSolve)

	_, body := get(t, ts.URL+"/statsz")
	var raw struct {
		Endpoints map[string]struct {
			Count    *int64   `json:"count"`
			Errors   *int64   `json:"errors"`
			Hits     *int64   `json:"hits"`
			Misses   *int64   `json:"misses"`
			HitRatio *float64 `json:"hit_ratio"`
			InFlight *int64   `json:"in_flight"`
			Latency  *struct {
				Samples *int     `json:"samples"`
				P50     *float64 `json:"p50_ms"`
				P95     *float64 `json:"p95_ms"`
				P99     *float64 `json:"p99_ms"`
			} `json:"latency"`
		} `json:"endpoints"`
		Store  *expstore.Stats `json:"store"`
		Uptime *float64        `json:"uptime_s"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("statsz not JSON: %v\n%s", err, body)
	}
	if raw.Store == nil || raw.Uptime == nil {
		t.Fatalf("statsz missing top-level fields: %s", body)
	}
	ep, ok := raw.Endpoints["GET /solve"]
	if !ok {
		t.Fatalf("statsz missing GET /solve: %s", body)
	}
	if ep.Count == nil || ep.Errors == nil || ep.Hits == nil || ep.Misses == nil ||
		ep.HitRatio == nil || ep.InFlight == nil || ep.Latency == nil {
		t.Fatalf("GET /solve entry missing fields: %s", body)
	}
	if ep.Latency.Samples == nil || ep.Latency.P50 == nil || ep.Latency.P95 == nil || ep.Latency.P99 == nil {
		t.Fatalf("latency entry missing fields: %s", body)
	}
}

// TestServedBlobMatchesCLI proves a served /solve body equals the blob
// the expstore API (and thus bumdp -json) produces for the same params.
func TestServedBlobMatchesCLI(t *testing.T) {
	srv, ts := newTestServer(t)

	_, body := get(t, ts.URL+fastSolve)

	params := bumdp.Params{Alpha: 0.25, Beta: 0.375, Gamma: 0.375, Model: bumdp.Compliant}
	opts := bumdp.SolveOptions{RatioTol: 1e-4, Epsilon: 1e-8}
	_, blob, hit, err := expstore.SolveBU(srv.store, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("direct SolveBU after served solve was not a hit — key mismatch between server and store API")
	}
	if want := fmt.Sprintf("%s\n", blob); string(body) != want {
		t.Fatalf("served body != store blob:\nserved: %s\nstore:  %s", body, want)
	}
}

// TestSolveShedsWhenSaturated proves the overload-shedding contract:
// with -max-solve-wait configured, a solve queued behind a saturated
// budget past the bound is refused with 429 + Retry-After (and counted
// on buserve_sheds_total) instead of waiting forever, and the same
// query succeeds once the budget frees.
func TestSolveShedsWhenSaturated(t *testing.T) {
	store, err := expstore.Open(expstore.Config{
		Dir:                 t.TempDir(),
		MaxConcurrentSolves: 1,
		MaxBudgetWait:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(store, nil, 2, 1, nil, nil, nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Occupy the single budget slot from outside the HTTP plane.
	holding := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		store.GetOrCompute("busolve-holder", func() ([]byte, error) {
			close(holding)
			<-release
			return []byte(`{"holder":true}`), nil
		})
	}()
	<-holding

	resp, body := get(t, ts.URL+fastSolve)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carried no Retry-After header")
	}
	if got := srv.sheds.Value(); got != 1 {
		t.Fatalf("buserve_sheds_total = %d, want 1", got)
	}

	close(release)
	<-done
	resp2, body2 := get(t, ts.URL+fastSolve)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, body %s", resp2.StatusCode, body2)
	}
}
