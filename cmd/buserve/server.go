package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"buanalysis/internal/bitcoin"
	"buanalysis/internal/bumdp"
	"buanalysis/internal/cliflag"
	"buanalysis/internal/core"
	"buanalysis/internal/expstore"
	"buanalysis/internal/farm"
	"buanalysis/internal/jobqueue"
	"buanalysis/internal/mdp"
	"buanalysis/internal/obs"
	"buanalysis/internal/par"
	"buanalysis/internal/stats"
	"buanalysis/internal/tracetree"
	"buanalysis/internal/verify"
)

// server is the buserve HTTP daemon: every query endpoint answers from
// the experiment store, solving and filling on a miss with the PR 1
// parallel engine under the store's bounded solve budget.
type server struct {
	store *expstore.Store
	// queue is the solve farm's job queue; the /jobs endpoints
	// (internal/farm.API) serve it, and completed jobs materialize into
	// store, so the serving endpoints answer worker-produced artifacts
	// as plain cache hits.
	queue *jobqueue.Queue
	// workers bounds how many sweep cells are dispatched concurrently
	// per request; the store's solve budget bounds the solves
	// themselves across all requests.
	workers int
	// par is the Bellman-sweep worker count inside each miss-path solve.
	par     int
	started time.Time
	mux     *http.ServeMux
	// reg is the server's metrics registry: endpoint families plus the
	// store, solver, and scheduler instruments, served by /metrics and
	// /debug/vars.
	reg *obs.Registry
	// tracer receives the farm's spans and queue events (the /jobs API
	// and the queue share it); ring is the always-on recent-events
	// window behind /tracez.
	tracer obs.Tracer
	ring   *obs.RingSink
	// families are the per-endpoint metric vectors; metrics holds one
	// child set per registered route (for /statsz).
	families endpointFamilies
	metrics  map[string]*endpointMetrics
	// sheds counts solve requests refused with 429 because the solve
	// budget stayed saturated past -max-solve-wait.
	sheds *obs.Counter
}

// newServer builds the handler tree. queue backs the /jobs endpoints
// (nil opens a private in-memory queue). workers and par follow the CLI
// conventions (0 = auto). reg is the metrics registry to expose; nil
// creates a private one. The store's and queue's counters and the
// solver/scheduler package instruments are registered on it.
func newServer(store *expstore.Store, queue *jobqueue.Queue, workers, parallelism int, reg *obs.Registry, tracer obs.Tracer, ring *obs.RingSink) *server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if ring == nil {
		ring = obs.NewRingSink(tracezWindow)
	}
	if tracer == nil {
		tracer = ring
	}
	if queue == nil {
		queue, _ = jobqueue.Open(jobqueue.Options{Tracer: tracer})
	}
	s := &server{
		store:    store,
		queue:    queue,
		workers:  workers,
		par:      parallelism,
		started:  time.Now(),
		mux:      http.NewServeMux(),
		reg:      reg,
		tracer:   tracer,
		ring:     ring,
		families: newEndpointFamilies(reg),
		metrics:  make(map[string]*endpointMetrics),
		sheds:    reg.Counter("buserve_sheds_total", "Solve requests refused with 429 because the solve budget stayed saturated past -max-solve-wait."),
	}
	store.RegisterMetrics(reg)
	queue.RegisterMetrics(reg)
	mdp.Observe(reg)
	par.Observe(reg)
	farm.Observe(reg)
	verify.Observe(reg)
	reg.GaugeFunc("buserve_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.started).Seconds()
	})
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /statsz", s.handleStatsz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /debug/vars", s.handleVars)
	s.route("GET /solve", s.handleSolve)
	s.route("GET /sweep", s.handleSweep)
	s.route("GET /tables/{n}", s.handleTable)
	s.route("GET /tracez", s.handleTracez)
	s.route("GET /workersz", s.handleWorkersz)
	s.routeTree("/jobs/", (&farm.API{
		Queue: queue, Store: store, Tracer: tracer,
		// The validity predicate runs with default tolerances; wiring the
		// tracer makes each verify.check span and rejection visible in
		// /tracez and the -trace JSONL stream.
		Verifier: &verify.Checker{Tracer: tracer},
	}).Handler())
	return s
}

// tracezWindow is how many recent trace events /tracez reconstructs
// its timelines from.
const tracezWindow = 2048

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// cacheOutcome classifies a request for the hit/miss accounting.
type cacheOutcome int

const (
	outcomeNone cacheOutcome = iota // endpoint has no cache semantics
	outcomeHit                      // answered entirely from the store
	outcomeMiss                     // at least one solve was needed
)

// handlerFunc is an endpoint body: it reports the cache outcome and any
// error it already rendered a status for.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (cacheOutcome, error)

// route registers a pattern and wraps its handler with the per-endpoint
// metrics: request count, hit/miss, in-flight gauge, latency samples.
func (s *server) route(pattern string, h handlerFunc) {
	m := s.families.endpoint(pattern)
	s.metrics[pattern] = m
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		outcome, err := h(w, r)
		m.observe(time.Since(start), outcome, err)
	})
}

// routeTree mounts a whole handler subtree under one endpoint metric
// family (request count, errors-by-status, in-flight, latency); the
// subtree keeps its own per-path semantics — the farm's /jobs/statsz
// carries the queue's per-kind depth and latency blocks.
func (s *server) routeTree(prefix string, h http.Handler) {
	m := s.families.endpoint(prefix)
	s.metrics[prefix] = m
	s.mux.HandleFunc(prefix, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		var err error
		if sw.status >= http.StatusBadRequest {
			err = fmt.Errorf("HTTP %d", sw.status)
		}
		m.observe(time.Since(start), outcomeNone, err)
	})
}

// statusWriter records the status a subtree handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// endpointFamilies are the labeled metric vectors shared by every
// endpoint, registered once on the server's registry.
type endpointFamilies struct {
	requests, errors, hits, misses *obs.CounterVec
	inFlight                       *obs.GaugeVec
	latency                        *obs.HistogramVec
}

func newEndpointFamilies(reg *obs.Registry) endpointFamilies {
	return endpointFamilies{
		requests: reg.CounterVec("buserve_requests_total", "HTTP requests served.", "endpoint"),
		errors:   reg.CounterVec("buserve_errors_total", "HTTP requests that returned an error status.", "endpoint"),
		hits:     reg.CounterVec("buserve_cache_hits_total", "Requests answered entirely from the experiment store.", "endpoint"),
		misses:   reg.CounterVec("buserve_cache_misses_total", "Requests that needed at least one solve.", "endpoint"),
		inFlight: reg.GaugeVec("buserve_in_flight_requests", "Requests currently being handled.", "endpoint"),
		latency:  reg.HistogramVec("buserve_request_seconds", "Request latency in seconds.", obs.DefBuckets, "endpoint"),
	}
}

// endpoint binds one route's children of the labeled families, plus an
// exact-quantile latency window backing /statsz (the histogram serves
// /metrics; the window preserves /statsz's exact percentiles).
func (f endpointFamilies) endpoint(pattern string) *endpointMetrics {
	return &endpointMetrics{
		count:    f.requests.With(pattern),
		errors:   f.errors.With(pattern),
		hits:     f.hits.With(pattern),
		misses:   f.misses.With(pattern),
		inFlight: f.inFlight.With(pattern),
		latency:  f.latency.With(pattern),
		lat:      obs.NewSample(latWindow),
	}
}

// endpointMetrics instruments one endpoint on obs instruments.
// Latencies go both to the Prometheus histogram and to a fixed window;
// /statsz reports exact quantiles over the retained window, exactly as
// it did before the registry migration.
type endpointMetrics struct {
	count, errors, hits, misses *obs.Counter
	inFlight                    *obs.Gauge
	latency                     *obs.Histogram
	lat                         *obs.Sample
}

// latWindow is the per-endpoint latency sample retention.
const latWindow = 2048

func (m *endpointMetrics) observe(d time.Duration, outcome cacheOutcome, err error) {
	m.count.Inc()
	if err != nil {
		m.errors.Inc()
	}
	switch outcome {
	case outcomeHit:
		m.hits.Inc()
	case outcomeMiss:
		m.misses.Inc()
	}
	m.latency.Observe(d.Seconds())
	m.lat.Observe(d.Seconds())
}

// latencyStats is the quantile block of one endpoint's /statsz entry.
type latencyStats struct {
	Samples int     `json:"samples"`
	P50ms   float64 `json:"p50_ms"`
	P95ms   float64 `json:"p95_ms"`
	P99ms   float64 `json:"p99_ms"`
}

// endpointStats is one endpoint's /statsz entry.
type endpointStats struct {
	Count    int64        `json:"count"`
	Errors   int64        `json:"errors"`
	Hits     int64        `json:"hits"`
	Misses   int64        `json:"misses"`
	HitRatio float64      `json:"hit_ratio"`
	InFlight int64        `json:"in_flight"`
	Latency  latencyStats `json:"latency"`
}

func (m *endpointMetrics) snapshot() endpointStats {
	samples := m.lat.Snapshot()
	st := endpointStats{
		Count:    m.count.Value(),
		Errors:   m.errors.Value(),
		Hits:     m.hits.Value(),
		Misses:   m.misses.Value(),
		InFlight: m.inFlight.Value(),
	}
	if tot := st.Hits + st.Misses; tot > 0 {
		st.HitRatio = float64(st.Hits) / float64(tot)
	}
	if qs, err := stats.Quantiles(samples, 0.50, 0.95, 0.99); err == nil {
		st.Latency = latencyStats{
			Samples: len(samples),
			P50ms:   qs[0] * 1e3,
			P95ms:   qs[1] * 1e3,
			P99ms:   qs[2] * 1e3,
		}
	}
	return st
}

// --- endpoints ---

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) (cacheOutcome, error) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	return outcomeNone, nil
}

// statszResponse is the /statsz document.
type statszResponse struct {
	UptimeSeconds float64                  `json:"uptime_s"`
	Store         expstore.Stats           `json:"store"`
	Queue         jobqueue.Stats           `json:"queue"`
	Endpoints     map[string]endpointStats `json:"endpoints"`
}

func (s *server) handleStatsz(w http.ResponseWriter, _ *http.Request) (cacheOutcome, error) {
	resp := statszResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Store:         s.store.Stats(),
		Queue:         s.queue.Stats(),
		Endpoints:     make(map[string]endpointStats, len(s.metrics)),
	}
	for pattern, m := range s.metrics {
		resp.Endpoints[pattern] = m.snapshot()
	}
	return outcomeNone, writeJSON(w, resp)
}

// tracezResponse is the /tracez document: the ring sink's recent trace
// events rebuilt into per-job timelines with the critical-path
// breakdown (the live, windowed view of what cmd/butrace computes over
// the full JSONL files).
type tracezResponse struct {
	// Window is the ring capacity; Events is how many trace events it
	// currently holds. When Events == Window the oldest timelines may be
	// partial — the JSONL files are the complete record.
	Window int              `json:"window"`
	Events int              `json:"events"`
	Report tracetree.Report `json:"report"`
}

// handleTracez serves the recent per-job timelines: the ring sink's
// window, merged into trace trees and analyzed exactly as cmd/butrace
// does offline. Only the coordinator-side events are visible here
// (worker spans live in the workers' own -trace files), so the report
// shows queue wait and store.put; butrace over the merged files shows
// the full path.
func (s *server) handleTracez(w http.ResponseWriter, _ *http.Request) (cacheOutcome, error) {
	evs := s.ring.Events()
	traced := evs[:0:0]
	for _, e := range evs {
		if e.TraceID != "" {
			traced = append(traced, e)
		}
	}
	resp := tracezResponse{
		Window: tracezWindow,
		Events: len(traced),
		Report: tracetree.Analyze(tracetree.Build(traced)),
	}
	return outcomeNone, writeJSON(w, resp)
}

// handleWorkersz serves the fleet health view: every worker the queue
// has seen, with lease/completion/failure counters and last-seen
// staleness, so an operator can spot a dead or wedged worker without
// reading journals.
func (s *server) handleWorkersz(w http.ResponseWriter, _ *http.Request) (cacheOutcome, error) {
	return outcomeNone, writeJSON(w, s.queue.Workers())
}

// handleMetrics serves the registry in the Prometheus text exposition
// format (version 0.0.4).
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) (cacheOutcome, error) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	return outcomeNone, s.reg.WritePrometheus(w)
}

// handleVars serves the registry as an expvar-style JSON dump.
func (s *server) handleVars(w http.ResponseWriter, _ *http.Request) (cacheOutcome, error) {
	w.Header().Set("Content-Type", "application/json")
	return outcomeNone, s.reg.WriteJSON(w)
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) (cacheOutcome, error) {
	q := r.URL.Query()
	if q.Get("model") == "bitcoin" || q.Get("bitcoin") == "true" || q.Get("bitcoin") == "1" {
		return s.solveBitcoin(w, r)
	}
	alpha, err := floatParam(q.Get("alpha"), 0.25)
	if err != nil {
		return outcomeNone, badRequest(w, "alpha: %v", err)
	}
	beta, err := floatParam(q.Get("beta"), 0)
	if err != nil {
		return outcomeNone, badRequest(w, "beta: %v", err)
	}
	gamma, err := floatParam(q.Get("gamma"), 0)
	if err != nil {
		return outcomeNone, badRequest(w, "gamma: %v", err)
	}
	if beta == 0 || gamma == 0 {
		ratio := q.Get("ratio")
		if ratio == "" {
			ratio = "1:1"
		}
		beta, gamma, err = cliflag.SplitRatio(alpha, ratio)
		if err != nil {
			return outcomeNone, badRequest(w, "ratio: %v", err)
		}
	}
	model, err := modelParam(q.Get("model"))
	if err != nil {
		return outcomeNone, badRequest(w, "%v", err)
	}
	setting, err := intParam(q.Get("setting"), 1)
	if err != nil {
		return outcomeNone, badRequest(w, "setting: %v", err)
	}
	ad, err := intParam(q.Get("ad"), 0)
	if err != nil {
		return outcomeNone, badRequest(w, "ad: %v", err)
	}
	rds, err := floatParam(q.Get("rds"), 0)
	if err != nil {
		return outcomeNone, badRequest(w, "rds: %v", err)
	}
	ratioTol, err := floatParam(q.Get("ratio_tol"), 0)
	if err != nil {
		return outcomeNone, badRequest(w, "ratio_tol: %v", err)
	}
	epsilon, err := floatParam(q.Get("epsilon"), 0)
	if err != nil {
		return outcomeNone, badRequest(w, "epsilon: %v", err)
	}
	params := bumdp.Params{
		Alpha: alpha, Beta: beta, Gamma: gamma,
		AD: ad, Setting: bumdp.Setting(setting), Model: model,
		DoubleSpendReward: rds,
	}
	opts := bumdp.SolveOptions{RatioTol: ratioTol, Epsilon: epsilon, Parallelism: s.par}
	// The request context rides into the solve-budget wait: a client
	// that disconnects while queued releases its budget slot instead of
	// burning it on an answer nobody reads.
	_, blob, hit, err := expstore.SolveBUCtx(r.Context(), s.store, params, opts)
	if err != nil {
		return outcomeNone, s.solveError(w, err)
	}
	return hitOutcome(hit), writeBlob(w, blob, hit)
}

// solveError renders a miss-path solve failure. Budget saturation is the
// one overload case: the store refused to queue the solve past
// -max-solve-wait, so the client gets 429 with a Retry-After hint
// instead of a 400 — the request was fine, the server is busy.
func (s *server) solveError(w http.ResponseWriter, err error) error {
	if errors.Is(err, expstore.ErrBudgetSaturated) {
		s.sheds.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return err
	}
	return badRequest(w, "%v", err)
}

func (s *server) solveBitcoin(w http.ResponseWriter, r *http.Request) (cacheOutcome, error) {
	q := r.URL.Query()
	alpha, err := floatParam(q.Get("alpha"), 0.25)
	if err != nil {
		return outcomeNone, badRequest(w, "alpha: %v", err)
	}
	tie, err := floatParam(q.Get("tie"), 0.5)
	if err != nil {
		return outcomeNone, badRequest(w, "tie: %v", err)
	}
	rds, err := floatParam(q.Get("rds"), 0)
	if err != nil {
		return outcomeNone, badRequest(w, "rds: %v", err)
	}
	var obj bitcoin.Objective
	switch q.Get("objective") {
	case "", "absolute":
		obj = bitcoin.AbsoluteReward
	case "relative":
		obj = bitcoin.RelativeRevenue
	case "orphan":
		obj = bitcoin.OrphanRate
	default:
		return outcomeNone, badRequest(w, "unknown objective %q", q.Get("objective"))
	}
	_, blob, hit, err := expstore.SolveBitcoin(s.store, bitcoin.Params{
		Alpha: alpha, TieWinProb: tie, Objective: obj, DoubleSpendReward: rds,
	})
	if err != nil {
		return outcomeNone, s.solveError(w, err)
	}
	return hitOutcome(hit), writeBlob(w, blob, hit)
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) (cacheOutcome, error) {
	q := r.URL.Query()
	model, err := modelParam(q.Get("model"))
	if err != nil {
		return outcomeNone, badRequest(w, "%v", err)
	}
	cfg, err := s.sweepConfig(q)
	if err != nil {
		return outcomeNone, badRequest(w, "%v", err)
	}
	cells, _, misses := expstore.SweepStatsCtx(r.Context(), s.store, model, cfg)
	outcome := outcomeHit
	if misses > 0 {
		outcome = outcomeMiss
	}
	if q.Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		setCacheHeader(w, outcome == outcomeHit)
		fmt.Fprint(w, core.FormatTable(cells, model == bumdp.Compliant))
		return outcome, nil
	}
	setCacheHeader(w, outcome == outcomeHit)
	return outcome, writeJSON(w, expstore.NewSweepRecord(model, cells))
}

// tableResponse is the JSON form of a /tables/{n} reproduction; it
// reuses the experiment store's record encoding.
type tableResponse struct {
	Table           int                       `json:"table"`
	Title           string                    `json:"title"`
	Sweeps          []expstore.SweepRecord    `json:"sweeps"`
	BitcoinBaseline []expstore.BaselineRecord `json:"bitcoin_baseline,omitempty"`
}

func (s *server) handleTable(w http.ResponseWriter, r *http.Request) (cacheOutcome, error) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		return outcomeNone, badRequest(w, "bad table number %q", r.PathValue("n"))
	}
	q := r.URL.Query()
	cfg, err := s.sweepConfig(q)
	if err != nil {
		return outcomeNone, badRequest(w, "%v", err)
	}
	full := q.Get("full") == "true" || q.Get("full") == "1"
	t, err := core.PaperTable(n, cfg, full)
	if err != nil {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, err)
		return outcomeNone, err
	}
	var cells []core.Cell
	var sweeps []expstore.SweepRecord
	misses := 0
	for _, job := range t.Jobs {
		cs, _, m := expstore.SweepStatsCtx(r.Context(), s.store, job.Model, job.Cfg)
		misses += m
		cells = append(cells, cs...)
		sweeps = append(sweeps, expstore.NewSweepRecord(job.Model, cs))
	}
	var baseline []core.BitcoinBaselineCell
	if t.Bitcoin {
		pre := s.store.Stats().Solves
		baseline = expstore.CachedBitcoinBaseline(s.store, nil, nil)
		misses += int(s.store.Stats().Solves - pre)
	}
	outcome := outcomeHit
	if misses > 0 {
		outcome = outcomeMiss
	}
	setCacheHeader(w, outcome == outcomeHit)
	if q.Get("format") == "json" {
		resp := tableResponse{Table: t.N, Title: t.Title, Sweeps: sweeps}
		if t.Bitcoin {
			resp.BitcoinBaseline = expstore.NewBaselineRecords(baseline)
		}
		return outcome, writeJSON(w, resp)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "=== %s ===\n", t.Title)
	fmt.Fprint(w, core.FormatTable(cells, t.Percent))
	if t.Bitcoin {
		fmt.Fprintln(w)
		fmt.Fprint(w, core.FormatBitcoinBaseline(baseline))
	}
	return outcome, nil
}

// sweepConfig builds the sweep configuration shared by /sweep and
// /tables from query params: setting (0 = both), ad, and fast (the
// lowered tolerances of butables -fast).
func (s *server) sweepConfig(q map[string][]string) (core.SweepConfig, error) {
	get := func(k string) string {
		if v, ok := q[k]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	cfg := core.SweepConfig{Workers: s.workers, InnerParallelism: s.par}
	setting, err := intParam(get("setting"), 0)
	if err != nil {
		return cfg, fmt.Errorf("setting: %v", err)
	}
	switch setting {
	case 0:
	case 1:
		cfg.Settings = []bumdp.Setting{bumdp.Setting1}
	case 2:
		cfg.Settings = []bumdp.Setting{bumdp.Setting2}
	default:
		return cfg, fmt.Errorf("unknown setting %d", setting)
	}
	ad, err := intParam(get("ad"), 0)
	if err != nil {
		return cfg, fmt.Errorf("ad: %v", err)
	}
	cfg.AD = ad
	if v := get("fast"); v == "true" || v == "1" {
		cfg.RatioTol, cfg.Epsilon = 1e-4, 1e-8
	}
	if v := get("alphas"); v != "" {
		alphas, err := cliflag.ParsePowers(v)
		if err != nil {
			return cfg, fmt.Errorf("alphas: %v", err)
		}
		cfg.Alphas = alphas
	}
	return cfg, nil
}

// --- small helpers ---

func hitOutcome(hit bool) cacheOutcome {
	if hit {
		return outcomeHit
	}
	return outcomeMiss
}

func setCacheHeader(w http.ResponseWriter, hit bool) {
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
}

// writeBlob serves a stored artifact verbatim: the body is the exact
// cached encoding, so hit and miss responses for one key are
// byte-identical.
func writeBlob(w http.ResponseWriter, blob []byte, hit bool) error {
	w.Header().Set("Content-Type", "application/json")
	setCacheHeader(w, hit)
	_, err := w.Write(append(blob, '\n'))
	return err
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	blob, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

func badRequest(w http.ResponseWriter, format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	http.Error(w, err.Error(), http.StatusBadRequest)
	return err
}

func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func modelParam(s string) (bumdp.IncentiveModel, error) {
	switch s {
	case "", "compliant":
		return bumdp.Compliant, nil
	case "noncompliant":
		return bumdp.NonCompliant, nil
	case "nonprofit":
		return bumdp.NonProfit, nil
	}
	return 0, fmt.Errorf("unknown model %q", s)
}
