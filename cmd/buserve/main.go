// Command buserve is the experiment query daemon: a stdlib HTTP server
// over the experiment result store. Every endpoint answers from cache
// when the artifact exists and solves-on-miss (deduplicated and bounded
// by -max-solves) when it does not, so repeated queries for one
// parameterization cost one solve total — across /solve, /sweep,
// /tables, and any CLI run sharing the same -cache-dir.
//
//	buserve -addr :8344 -cache-dir /var/cache/bu
//
//	GET /healthz                 liveness probe
//	GET /statsz                  store + queue + per-endpoint metrics (JSON)
//	GET /metrics                 Prometheus text exposition
//	GET /debug/vars              metrics registry as JSON
//	GET /solve?alpha=0.25&ratio=1:1&model=compliant&setting=1
//	GET /solve?model=bitcoin&alpha=0.25&tie=0.5
//	GET /sweep?model=noncompliant&setting=2&format=table
//	GET /tables/3?format=json
//	POST /jobs/...               distributed solve farm coordinator
//
// The daemon doubles as the solve-farm coordinator: /jobs/enqueue,
// /jobs/lease, /jobs/heartbeat, /jobs/complete and friends expose a
// lease-based job queue that cmd/buworker processes pull from. With
// -queue-journal (defaulting to <cache-dir>/jobqueue.json when a cache
// dir is set) the queue survives restarts, so an interrupted sweep
// resumes where it left off.
//
// Completions are checked against the coordinator's prescribed validity
// predicate (internal/verify) before they materialize into the store;
// with -quorum K a job additionally completes only once K distinct
// workers delivered matching results, and workers that repeatedly
// submit invalid or conflicting results are quarantined
// (-quarantine-after). With -max-solve-wait the serving endpoints shed
// load: a solve that would wait longer than the bound behind a
// saturated -max-solves budget is refused with 429 Too Many Requests
// and a Retry-After header instead of queueing unboundedly.
//
// With -pprof the net/http/pprof profiling handlers are additionally
// mounted under /debug/pprof/.
//
// Solve and sweep responses carry an X-Cache: hit|miss header; the body
// of a hit is byte-identical to the body the original miss returned.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener closes,
// in-flight requests get a drain window (-drain-timeout), and the queue
// journal is flushed before exit. A second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"buanalysis/internal/cliflag"
	"buanalysis/internal/expstore"
	"buanalysis/internal/jobqueue"
	"buanalysis/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("buserve: ")
	var (
		addr         = flag.String("addr", ":8344", "listen address (host:port; port 0 picks a free port)")
		cacheDir     = flag.String("cache-dir", "", "experiment store directory (empty = in-memory only)")
		memEntries   = flag.Int("mem", 0, "in-memory LRU capacity in artifacts (0 = default, negative = disabled)")
		maxSolves    = flag.Int("max-solves", runtime.NumCPU(), "max solves running at once across all requests (0 = unbounded)")
		maxSolveWait = flag.Duration("max-solve-wait", 0, "refuse solves queued behind a saturated budget longer than this with 429 (0 = wait forever)")
		workers      = cliflag.WorkersFlag(flag.CommandLine, "sweep cells dispatched concurrently per request")
		par          = cliflag.ParFlag(flag.CommandLine)
		portFile     = flag.String("portfile", "", "write the actual listen address to this file once serving")
		withPprof    = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		queueJournal = flag.String("queue-journal", "", "job queue journal path (default <cache-dir>/jobqueue.json; empty with no cache dir = in-memory queue)")
		quorum       = flag.Int("quorum", 1, "distinct workers whose matching results must agree before a job completes (1 = first valid result wins)")
		quarAfter    = flag.Int("quarantine-after", 0, "reputation debits before a worker is quarantined (0 = default, negative = never)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
		trace        = cliflag.TraceFlag(flag.CommandLine)
		metricsDump  = cliflag.MetricsDumpFlag(flag.CommandLine)
		version      = cliflag.VersionFlag(flag.CommandLine)
	)
	logFormat, logLevel := cliflag.LogFlags(flag.CommandLine)
	flag.Parse()
	cliflag.HandleVersion(*version)
	if _, err := cliflag.SetupLog("buserve", *logFormat, *logLevel); err != nil {
		log.Fatal(err)
	}

	store, err := expstore.Open(expstore.Config{
		Dir:                 *cacheDir,
		MemEntries:          *memEntries,
		MaxConcurrentSolves: *maxSolves,
		MaxBudgetWait:       *maxSolveWait,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The farm trace plane: a ring sink always feeds /tracez with the
	// recent per-job timelines; -trace additionally streams every event
	// to a JSONL file cmd/butrace can merge with the workers' files.
	fileTrace, closeTrace, err := cliflag.OpenTrace(*trace)
	if err != nil {
		log.Fatal(err)
	}
	ring := obs.NewRingSink(tracezWindow)
	tracer := obs.MultiTracer(ring, fileTrace)

	journal := *queueJournal
	if journal == "" && *cacheDir != "" {
		journal = filepath.Join(*cacheDir, "jobqueue.json")
	}
	queue, err := jobqueue.Open(jobqueue.Options{
		Journal:         journal,
		Tracer:          tracer,
		Quorum:          *quorum,
		QuarantineAfter: *quarAfter,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (cache dir %q, solve budget %d, queue journal %q, quorum %d)",
		ln.Addr(), *cacheDir, *maxSolves, journal, *quorum)
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(fmt.Sprintf("%s\n", ln.Addr())), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	reg := obs.NewRegistry()
	srv := newServer(store, queue, *workers, *par, reg, tracer, ring)
	var handler http.Handler = srv
	if *withPprof {
		// pprof stays opt-in: profiling endpoints expose internals and
		// cost CPU when scraped, so production runs leave them off.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Abandoned leases are also swept lazily by queue traffic; the ticker
	// just bounds how stale the queue can look when no worker is polling.
	expiryDone := make(chan struct{})
	go func() {
		defer close(expiryDone)
		t := time.NewTicker(5 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				queue.ExpireLeases()
			}
		}
	}()

	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second SIGINT/SIGTERM now kills the process outright
	log.Printf("shutting down (drain %s)", *drainTimeout)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	<-expiryDone
	// Close last: it flushes the journal, so everything the drained
	// requests did to the queue lands on disk.
	if err := queue.Close(); err != nil {
		log.Printf("closing queue: %v", err)
	}
	// The trace sink buffers; close it so the file ends on a whole line
	// (cmd/butrace refuses torn files).
	if err := closeTrace(); err != nil {
		log.Printf("closing trace: %v", err)
	}
	if *metricsDump {
		if err := cliflag.DumpMetrics(reg); err != nil {
			log.Printf("metrics dump: %v", err)
		}
	}
	log.Printf("bye")
}
