// Command buserve is the experiment query daemon: a stdlib HTTP server
// over the experiment result store. Every endpoint answers from cache
// when the artifact exists and solves-on-miss (deduplicated and bounded
// by -max-solves) when it does not, so repeated queries for one
// parameterization cost one solve total — across /solve, /sweep,
// /tables, and any CLI run sharing the same -cache-dir.
//
//	buserve -addr :8344 -cache-dir /var/cache/bu
//
//	GET /healthz                 liveness probe
//	GET /statsz                  store + per-endpoint metrics (JSON)
//	GET /metrics                 Prometheus text exposition
//	GET /debug/vars              metrics registry as JSON
//	GET /solve?alpha=0.25&ratio=1:1&model=compliant&setting=1
//	GET /solve?model=bitcoin&alpha=0.25&tie=0.5
//	GET /sweep?model=noncompliant&setting=2&format=table
//	GET /tables/3?format=json
//
// With -pprof the net/http/pprof profiling handlers are additionally
// mounted under /debug/pprof/.
//
// Solve and sweep responses carry an X-Cache: hit|miss header; the body
// of a hit is byte-identical to the body the original miss returned.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"

	"buanalysis/internal/cliflag"
	"buanalysis/internal/expstore"
	"buanalysis/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("buserve: ")
	var (
		addr       = flag.String("addr", ":8344", "listen address (host:port; port 0 picks a free port)")
		cacheDir   = flag.String("cache-dir", "", "experiment store directory (empty = in-memory only)")
		memEntries = flag.Int("mem", 0, "in-memory LRU capacity in artifacts (0 = default, negative = disabled)")
		maxSolves  = flag.Int("max-solves", runtime.NumCPU(), "max solves running at once across all requests (0 = unbounded)")
		workers    = cliflag.WorkersFlag(flag.CommandLine, "sweep cells dispatched concurrently per request")
		par        = cliflag.ParFlag(flag.CommandLine)
		portFile   = flag.String("portfile", "", "write the actual listen address to this file once serving")
		withPprof  = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	)
	flag.Parse()

	store, err := expstore.Open(expstore.Config{
		Dir:                 *cacheDir,
		MemEntries:          *memEntries,
		MaxConcurrentSolves: *maxSolves,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (cache dir %q, solve budget %d)", ln.Addr(), *cacheDir, *maxSolves)
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(fmt.Sprintf("%s\n", ln.Addr())), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	srv := newServer(store, *workers, *par, obs.NewRegistry())
	var handler http.Handler = srv
	if *withPprof {
		// pprof stays opt-in: profiling endpoints expose internals and
		// cost CPU when scraped, so production runs leave them off.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}
	log.Fatal(http.Serve(ln, handler))
}
