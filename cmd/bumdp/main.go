// Command bumdp solves a single instance of the paper's attack MDP (or
// the Bitcoin baseline) with explicit parameters and prints the optimal
// utility, diagnostics, and optionally the optimal policy.
//
//	bumdp -alpha 0.25 -beta 0.375 -gamma 0.375 -model compliant -setting 1
//	bumdp -alpha 0.10 -ratio 1:2 -model noncompliant -setting 2
//	bumdp -bitcoin -alpha 0.25 -tie 0.5
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"buanalysis/internal/bitcoin"
	"buanalysis/internal/bumdp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bumdp: ")
	var (
		alpha   = flag.Float64("alpha", 0.25, "attacker mining power share")
		beta    = flag.Float64("beta", 0, "Bob's share (small EB); 0 = derive from -ratio")
		gamma   = flag.Float64("gamma", 0, "Carol's share (large EB); 0 = derive from -ratio")
		ratio   = flag.String("ratio", "1:1", "Bob:Carol split when -beta/-gamma are not given")
		model   = flag.String("model", "compliant", "compliant | noncompliant | nonprofit")
		setting = flag.Int("setting", 1, "1 = no sticky gate, 2 = both phases")
		ad      = flag.Int("ad", 6, "excessive acceptance depth")
		rds     = flag.Float64("rds", 10, "double-spending reward in block rewards")
		policy  = flag.Bool("policy", false, "print the optimal policy (phase-1 states)")
		btc     = flag.Bool("bitcoin", false, "solve the Bitcoin baseline instead of BU")
		tie     = flag.Float64("tie", 0.5, "Bitcoin baseline: P(win a tie)")
	)
	flag.Parse()

	if *btc {
		solveBitcoin(*alpha, *tie, *model, *rds)
		return
	}

	b, g := *beta, *gamma
	if b == 0 || g == 0 {
		parts := strings.SplitN(*ratio, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -ratio %q", *ratio)
		}
		rb, err1 := strconv.ParseFloat(parts[0], 64)
		rg, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || rb <= 0 || rg <= 0 {
			log.Fatalf("bad -ratio %q", *ratio)
		}
		rest := 1 - *alpha
		b = rest * rb / (rb + rg)
		g = rest - b
	}

	var m bumdp.IncentiveModel
	switch *model {
	case "compliant":
		m = bumdp.Compliant
	case "noncompliant":
		m = bumdp.NonCompliant
	case "nonprofit":
		m = bumdp.NonProfit
	default:
		log.Fatalf("unknown model %q", *model)
	}

	a, err := bumdp.New(bumdp.Params{
		Alpha: *alpha, Beta: b, Gamma: g,
		AD: *ad, Setting: bumdp.Setting(*setting), Model: m,
		DoubleSpendReward: *rds,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %v, setting %d, AD=%d\n", m, *setting, *ad)
	fmt.Printf("alpha=%.4f beta=%.4f gamma=%.4f (states: %d)\n", *alpha, b, g, len(a.States))
	fmt.Printf("optimal utility: %.5f (honest baseline: %.5f)\n", res.Utility, a.HonestUtility())
	fmt.Printf("fork rate under optimal policy: %.3f; solver probes: %d\n", res.ForkRate, res.Probes)
	if *policy {
		fmt.Println("optimal policy (phase-1 states, (l1,l2,a1,a2,r) -> action):")
		fmt.Print(a.DescribePolicy(res.Policy, true))
	}
}

func solveBitcoin(alpha, tie float64, model string, rds float64) {
	var obj bitcoin.Objective
	switch model {
	case "compliant":
		obj = bitcoin.RelativeRevenue
	case "noncompliant":
		obj = bitcoin.AbsoluteReward
	case "nonprofit":
		obj = bitcoin.OrphanRate
	default:
		log.Fatalf("unknown model %q", model)
	}
	a, err := bitcoin.New(bitcoin.Params{
		Alpha: alpha, TieWinProb: tie, Objective: obj, DoubleSpendReward: rds,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bitcoin baseline: alpha=%.4f tie=%.2f objective=%d (states: %d)\n",
		alpha, tie, obj, len(a.States))
	fmt.Printf("optimal utility: %.5f (honest baseline: %.5f)\n", res.Utility, a.HonestUtility())
}
