// Command bumdp solves a single instance of the paper's attack MDP (or
// the Bitcoin baseline) with explicit parameters and prints the optimal
// utility, diagnostics, and optionally the optimal policy.
//
//	bumdp -alpha 0.25 -beta 0.375 -gamma 0.375 -model compliant -setting 1
//	bumdp -alpha 0.10 -ratio 1:2 -model noncompliant -setting 2
//	bumdp -bitcoin -alpha 0.25 -tie 0.5
//	bumdp -sweep -model compliant -setting 1 -workers 4
//
// -par sets the Bellman-sweep worker count inside the solver (0 = auto,
// 1 = serial; the result is bit-identical either way). -sweep solves
// the paper's whole (alpha, ratio) grid for the chosen model instead of
// a single instance, with -workers cells in flight at once.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"buanalysis/internal/bitcoin"
	"buanalysis/internal/bumdp"
	"buanalysis/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bumdp: ")
	var (
		alpha   = flag.Float64("alpha", 0.25, "attacker mining power share")
		beta    = flag.Float64("beta", 0, "Bob's share (small EB); 0 = derive from -ratio")
		gamma   = flag.Float64("gamma", 0, "Carol's share (large EB); 0 = derive from -ratio")
		ratio   = flag.String("ratio", "1:1", "Bob:Carol split when -beta/-gamma are not given")
		model   = flag.String("model", "compliant", "compliant | noncompliant | nonprofit")
		setting = flag.Int("setting", 1, "1 = no sticky gate, 2 = both phases")
		ad      = flag.Int("ad", 6, "excessive acceptance depth")
		rds     = flag.Float64("rds", 10, "double-spending reward in block rewards")
		policy  = flag.Bool("policy", false, "print the optimal policy (phase-1 states)")
		btc     = flag.Bool("bitcoin", false, "solve the Bitcoin baseline instead of BU")
		tie     = flag.Float64("tie", 0.5, "Bitcoin baseline: P(win a tie)")
		par     = flag.Int("par", 0, "Bellman-sweep workers inside the solver (0 = auto; results identical)")
		sweep   = flag.Bool("sweep", false, "solve the paper's whole (alpha, ratio) grid instead of one instance")
		workers = flag.Int("workers", 0, "grid cells solved concurrently with -sweep (0 = all cores)")
	)
	flag.Parse()

	if *btc {
		solveBitcoin(*alpha, *tie, *model, *rds)
		return
	}

	b, g := *beta, *gamma
	if b == 0 || g == 0 {
		parts := strings.SplitN(*ratio, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -ratio %q", *ratio)
		}
		rb, err1 := strconv.ParseFloat(parts[0], 64)
		rg, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || rb <= 0 || rg <= 0 {
			log.Fatalf("bad -ratio %q", *ratio)
		}
		rest := 1 - *alpha
		b = rest * rb / (rb + rg)
		g = rest - b
	}

	var m bumdp.IncentiveModel
	switch *model {
	case "compliant":
		m = bumdp.Compliant
	case "noncompliant":
		m = bumdp.NonCompliant
	case "nonprofit":
		m = bumdp.NonProfit
	default:
		log.Fatalf("unknown model %q", *model)
	}

	if *sweep {
		sweepGrid(m, bumdp.Setting(*setting), *ad, *workers, *par)
		return
	}

	a, err := bumdp.New(bumdp.Params{
		Alpha: *alpha, Beta: b, Gamma: g,
		AD: *ad, Setting: bumdp.Setting(*setting), Model: m,
		DoubleSpendReward: *rds,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.SolveWith(bumdp.SolveOptions{Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %v, setting %d, AD=%d\n", m, *setting, *ad)
	fmt.Printf("alpha=%.4f beta=%.4f gamma=%.4f (states: %d)\n", *alpha, b, g, len(a.States))
	fmt.Printf("optimal utility: %.5f (honest baseline: %.5f)\n", res.Utility, a.HonestUtility())
	fmt.Printf("fork rate under optimal policy: %.3f; solver probes: %d\n", res.ForkRate, res.Probes)
	fmt.Printf("solver stats: %d sweeps, residual %.2e, %d worker(s), %s\n",
		res.Stats.Iterations, res.Stats.Residual, res.Stats.Workers, res.Stats.Duration.Round(time.Microsecond))
	if *policy {
		fmt.Println("optimal policy (phase-1 states, (l1,l2,a1,a2,r) -> action):")
		fmt.Print(a.DescribePolicy(res.Policy, true))
	}
}

// sweepGrid solves the paper's (alpha, ratio) grid for one incentive
// model through the shared grid-sweep runner and prints the table plus
// aggregate solver statistics.
func sweepGrid(m bumdp.IncentiveModel, setting bumdp.Setting, ad, workers, par int) {
	cfg := core.SweepConfig{
		Settings:         []bumdp.Setting{setting},
		AD:               ad,
		Workers:          workers,
		InnerParallelism: par,
	}
	start := time.Now()
	cells := core.Sweep(m, cfg)
	elapsed := time.Since(start)
	fmt.Print(core.FormatTable(cells, m == bumdp.Compliant))
	solved, probes, sweeps := 0, 0, 0
	for _, c := range cells {
		if c.Skipped || c.Err != nil {
			continue
		}
		solved++
		probes += c.Stats.Probes
		sweeps += c.Stats.Iterations
	}
	fmt.Printf("solved %d cells in %s (%d probes, %d Bellman sweeps)\n",
		solved, elapsed.Round(time.Millisecond), probes, sweeps)
}

func solveBitcoin(alpha, tie float64, model string, rds float64) {
	var obj bitcoin.Objective
	switch model {
	case "compliant":
		obj = bitcoin.RelativeRevenue
	case "noncompliant":
		obj = bitcoin.AbsoluteReward
	case "nonprofit":
		obj = bitcoin.OrphanRate
	default:
		log.Fatalf("unknown model %q", model)
	}
	a, err := bitcoin.New(bitcoin.Params{
		Alpha: alpha, TieWinProb: tie, Objective: obj, DoubleSpendReward: rds,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bitcoin baseline: alpha=%.4f tie=%.2f objective=%d (states: %d)\n",
		alpha, tie, obj, len(a.States))
	fmt.Printf("optimal utility: %.5f (honest baseline: %.5f)\n", res.Utility, a.HonestUtility())
}
