// Command bumdp solves a single instance of the paper's attack MDP (or
// the Bitcoin baseline) with explicit parameters and prints the optimal
// utility, diagnostics, and optionally the optimal policy.
//
//	bumdp -alpha 0.25 -beta 0.375 -gamma 0.375 -model compliant -setting 1
//	bumdp -alpha 0.10 -ratio 1:2 -model noncompliant -setting 2
//	bumdp -bitcoin -alpha 0.25 -tie 0.5
//	bumdp -sweep -model compliant -setting 1 -workers 4
//
// -par sets the Bellman-sweep worker count inside the solver (0 = auto,
// 1 = serial; the result is bit-identical either way). -sweep solves
// the paper's whole (alpha, ratio) grid for the chosen model instead of
// a single instance, with -workers rows in flight at once; without
// -cache-dir each row is warm-chained on a shared solver session (one
// compiled model rebound per cell, each bisection seeded from its left
// neighbor), which is roughly twice as fast as independent cold cells
// and agrees with them within the ratio tolerance.
//
// -cache-dir answers repeat solves from the experiment store instead of
// recomputing: every solved artifact is written there once and any
// later bumdp, butables or buserve run over the same directory reuses
// it. -json emits the store's own serialization, so machine-readable
// output and cached blobs can never drift.
//
// -trace writes the solver's convergence events (one JSON object per
// line: per-iteration Bellman residual and span bounds, policy-change
// counts, and the ratio search's probes and brackets) to a file;
// results are bit-identical with and without it. -metrics-dump prints
// the run's metrics registry (solve/sweep counters, scheduler
// utilization, store hits and misses) as JSON to stderr on exit.
// -cpuprofile and -memprofile write pprof profiles of the run (see
// EXPERIMENTS.md for the profiling recipe).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"buanalysis/internal/bitcoin"
	"buanalysis/internal/bumdp"
	"buanalysis/internal/cliflag"
	"buanalysis/internal/core"
	"buanalysis/internal/expstore"
	"buanalysis/internal/mdp"
	"buanalysis/internal/obs"
	parpkg "buanalysis/internal/par"
	"buanalysis/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bumdp: ")
	var (
		alpha    = flag.Float64("alpha", 0.25, "attacker mining power share")
		beta     = flag.Float64("beta", 0, "Bob's share (small EB); 0 = derive from -ratio")
		gamma    = flag.Float64("gamma", 0, "Carol's share (large EB); 0 = derive from -ratio")
		ratio    = flag.String("ratio", "1:1", "Bob:Carol split when -beta/-gamma are not given")
		model    = flag.String("model", "compliant", "compliant | noncompliant | nonprofit")
		setting  = flag.Int("setting", 1, "1 = no sticky gate, 2 = both phases")
		ad       = flag.Int("ad", 6, "excessive acceptance depth")
		rds      = flag.Float64("rds", 10, "double-spending reward in block rewards")
		policy   = flag.Bool("policy", false, "print the optimal policy (phase-1 states)")
		btc      = flag.Bool("bitcoin", false, "solve the Bitcoin baseline instead of BU")
		tie      = flag.Float64("tie", 0.5, "Bitcoin baseline: P(win a tie)")
		par      = cliflag.ParFlag(flag.CommandLine)
		sweep    = flag.Bool("sweep", false, "solve the paper's whole (alpha, ratio) grid instead of one instance")
		workers  = cliflag.WorkersFlag(flag.CommandLine, "grid cells solved concurrently with -sweep")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON (the experiment-store encoding)")
		cacheDir = flag.String("cache-dir", "", "experiment store directory; repeat solves answer from cache")
		trace    = cliflag.TraceFlag(flag.CommandLine)
		mdump    = cliflag.MetricsDumpFlag(flag.CommandLine)
		version  = cliflag.VersionFlag(flag.CommandLine)
	)
	cpuprof, memprof := cliflag.ProfileFlags(flag.CommandLine)
	logFormat, logLevel := cliflag.LogFlags(flag.CommandLine)
	flag.Parse()
	cliflag.HandleVersion(*version)
	if _, err := cliflag.SetupLog("bumdp", *logFormat, *logLevel); err != nil {
		log.Fatal(err)
	}
	stopProf, err := cliflag.StartProfiles(*cpuprof, *memprof)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	store, err := expstore.Open(expstore.Config{Dir: *cacheDir})
	if err != nil {
		log.Fatal(err)
	}
	tracer, closeTrace, err := cliflag.OpenTrace(*trace)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			log.Fatal(err)
		}
	}()
	if *mdump {
		reg := obs.NewRegistry()
		store.RegisterMetrics(reg)
		mdp.Observe(reg)
		parpkg.Observe(reg)
		defer cliflag.DumpMetrics(reg)
	}

	if *btc {
		solveBitcoin(store, *alpha, *tie, *model, *rds, *jsonOut)
		return
	}

	b, g := *beta, *gamma
	if b == 0 || g == 0 {
		b, g, err = cliflag.SplitRatio(*alpha, *ratio)
		if err != nil {
			log.Fatalf("bad -ratio: %v", err)
		}
	}

	var m bumdp.IncentiveModel
	switch *model {
	case "compliant":
		m = bumdp.Compliant
	case "noncompliant":
		m = bumdp.NonCompliant
	case "nonprofit":
		m = bumdp.NonProfit
	default:
		log.Fatalf("unknown model %q", *model)
	}

	if *sweep {
		sweepGrid(store, *cacheDir != "", m, bumdp.Setting(*setting), *ad, *workers, *par, *jsonOut, tracer)
		return
	}

	params := bumdp.Params{
		Alpha: *alpha, Beta: b, Gamma: g,
		AD: *ad, Setting: bumdp.Setting(*setting), Model: m,
		DoubleSpendReward: *rds,
	}
	if *policy {
		// The store keeps utility-level records, not policies; a policy
		// request always solves directly.
		solveWithPolicy(params, *par, tracer)
		return
	}
	rec, blob, _, err := expstore.SolveBU(store, params, bumdp.SolveOptions{Parallelism: *par, Tracer: tracer})
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		os.Stdout.Write(append(blob, '\n'))
		return
	}
	fmt.Printf("model: %v, setting %d, AD=%d\n", m, *setting, *ad)
	fmt.Printf("alpha=%.4f beta=%.4f gamma=%.4f (states: %d)\n", *alpha, b, g, rec.States)
	fmt.Printf("optimal utility: %.5f (honest baseline: %.5f)\n", rec.Utility, rec.Honest)
	fmt.Printf("fork rate under optimal policy: %.3f; solver probes: %d\n", rec.ForkRate, rec.Probes)
	fmt.Printf("solver stats: %d sweeps, residual %.2e, %d worker(s), %s\n",
		rec.Stats.Iterations, rec.Stats.Residual, rec.Stats.Workers, rec.Stats.Duration.Round(time.Microsecond))
}

// solveWithPolicy is the direct (uncached) solve path for -policy runs.
func solveWithPolicy(params bumdp.Params, par int, tracer obs.Tracer) {
	a, err := bumdp.New(params)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.SolveWith(bumdp.SolveOptions{Parallelism: par, Tracer: tracer})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %v, setting %d, AD=%d\n", params.Model, params.Setting, params.AD)
	fmt.Printf("alpha=%.4f beta=%.4f gamma=%.4f (states: %d)\n", params.Alpha, params.Beta, params.Gamma, len(a.States))
	fmt.Printf("optimal utility: %.5f (honest baseline: %.5f)\n", res.Utility, a.HonestUtility())
	fmt.Printf("fork rate under optimal policy: %.3f; solver probes: %d\n", res.ForkRate, res.Probes)
	fmt.Printf("solver stats: %d sweeps, residual %.2e, %d worker(s), %s\n",
		res.Stats.Iterations, res.Stats.Residual, res.Stats.Workers, res.Stats.Duration.Round(time.Microsecond))
	fmt.Println("optimal policy (phase-1 states, (l1,l2,a1,a2,r) -> action):")
	fmt.Print(a.DescribePolicy(res.Policy, true))
}

// sweepGrid solves the paper's (alpha, ratio) grid for one incentive
// model and prints the table plus aggregate solver statistics (or, with
// -json, the store's sweep serialization). With -cache-dir the cells go
// through the experiment store (cache hits, independent cold solves on
// misses — the cacheable reference artifacts); without it the grid is
// solved directly, warm-chaining each row on a shared solver session,
// which is the fastest path for a one-shot sweep.
func sweepGrid(store *expstore.Store, cached bool, m bumdp.IncentiveModel, setting bumdp.Setting, ad, workers, par int, jsonOut bool, tracer obs.Tracer) {
	cfg := core.SweepConfig{
		Settings:         []bumdp.Setting{setting},
		AD:               ad,
		Workers:          workers,
		InnerParallelism: par,
		Tracer:           tracer,
	}
	start := time.Now()
	var cells []core.Cell
	if cached {
		cells = expstore.Sweep(store, m, cfg)
	} else {
		cells = core.Sweep(m, cfg)
	}
	elapsed := time.Since(start)
	if jsonOut {
		blob, err := json.MarshalIndent(expstore.NewSweepRecord(m, cells), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(blob, '\n'))
		return
	}
	fmt.Print(core.FormatTable(cells, m == bumdp.Compliant))
	solved, probes, warm, sweeps := 0, 0, 0, 0
	var durations []float64
	for _, c := range cells {
		if c.Skipped || c.Err != nil {
			continue
		}
		solved++
		probes += c.Stats.Probes
		warm += c.Stats.WarmProbes
		sweeps += c.Stats.Iterations
		durations = append(durations, c.Stats.Duration.Seconds())
	}
	fmt.Printf("solved %d cells in %s (%d probes, %d warm-started, %d Bellman sweeps)\n",
		solved, elapsed.Round(time.Millisecond), probes, warm, sweeps)
	if len(durations) > 0 {
		if qs, err := stats.Quantiles(durations, 0.5, 0.95, 1); err == nil {
			fmt.Printf("per-cell solve time: p50 %s, p95 %s, max %s\n",
				secs(qs[0]), secs(qs[1]), secs(qs[2]))
		}
	}
	st := store.Stats()
	if st.Hits > 0 {
		fmt.Printf("experiment store: %d hits, %d solves\n", st.Hits, st.Solves)
	}
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond)
}

func solveBitcoin(store *expstore.Store, alpha, tie float64, model string, rds float64, jsonOut bool) {
	var obj bitcoin.Objective
	switch model {
	case "compliant":
		obj = bitcoin.RelativeRevenue
	case "noncompliant":
		obj = bitcoin.AbsoluteReward
	case "nonprofit":
		obj = bitcoin.OrphanRate
	default:
		log.Fatalf("unknown model %q", model)
	}
	rec, blob, _, err := expstore.SolveBitcoin(store, bitcoin.Params{
		Alpha: alpha, TieWinProb: tie, Objective: obj, DoubleSpendReward: rds,
	})
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		os.Stdout.Write(append(blob, '\n'))
		return
	}
	fmt.Printf("bitcoin baseline: alpha=%.4f tie=%.2f objective=%d (states: %d)\n",
		alpha, tie, obj, rec.States)
	fmt.Printf("optimal utility: %.5f (honest baseline: %.5f)\n", rec.Utility, rec.Honest)
}
