// Command buworker is a solve-farm worker: it pulls jobs from a
// coordinator (cmd/buserve), runs the solver they name, and ships the
// result blob back over /jobs/complete. The coordinator materializes
// each result into the experiment store exactly once, so any number of
// workers — including duplicates and crashed-and-restarted ones — can
// chew on the same sweep without stepping on each other.
//
//	buworker -server http://coordinator:8344 -concurrency 4
//
// Leases are the only coordination: a worker that dies mid-job simply
// stops heartbeating and the coordinator requeues the work. SIGINT or
// SIGTERM drains gracefully — in-flight jobs finish, heartbeat, and
// complete; only new leasing stops. A second signal exits immediately.
//
// With -drain the worker exits once the queue is empty instead of
// polling forever, which turns a worker fleet into a batch step:
//
//	buworker -server $URL -drain & buworker -server $URL -drain & wait
//
// With -byzantine the worker deliberately tampers with its results
// before delivering them (modes: corrupt, flipcell, gain, stall; the
// mutation is deterministic in -byzantine-seed). This is a drill
// facility: the coordinator's prescribed validity checks are expected
// to reject every forgery and eventually quarantine the worker, and a
// byzantine run must leave the experiment store byte-identical to an
// honest one.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"buanalysis/internal/cliflag"
	"buanalysis/internal/farm"
	"buanalysis/internal/mdp"
	"buanalysis/internal/obs"
	"buanalysis/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("buworker: ")
	var (
		server      = flag.String("server", "http://127.0.0.1:8344", "coordinator base URL")
		name        = flag.String("name", "", "worker name in leases (default buworker-<pid>)")
		concurrency = flag.Int("concurrency", 1, "jobs executed at once")
		kinds       = flag.String("kinds", "", "comma-separated job kinds to lease (empty = any)")
		ttl         = flag.Duration("ttl", 30*time.Second, "lease TTL; heartbeats renew at ttl/3")
		poll        = flag.Duration("poll", 500*time.Millisecond, "idle sleep between lease attempts")
		drain       = flag.Bool("drain", false, "exit once the queue is empty instead of polling forever")
		byzantine   = flag.String("byzantine", "", "chaos mode: tamper with results before delivery (corrupt, flipcell, gain, stall); drills only")
		byzSeed     = flag.Int64("byzantine-seed", 1, "chaos seed; a failing drill replays deterministically from it")
		quiet       = flag.Bool("quiet", false, "suppress per-job progress lines")
		parFlag     = cliflag.ParFlag(flag.CommandLine)
		trace       = cliflag.TraceFlag(flag.CommandLine)
		metricsDump = cliflag.MetricsDumpFlag(flag.CommandLine)
		version     = cliflag.VersionFlag(flag.CommandLine)
	)
	logFormat, logLevel := cliflag.LogFlags(flag.CommandLine)
	flag.Parse()
	cliflag.HandleVersion(*version)
	slogger, err := cliflag.SetupLog("buworker", *logFormat, *logLevel)
	if err != nil {
		log.Fatal(err)
	}

	workerName := *name
	if workerName == "" {
		workerName = fmt.Sprintf("buworker-%d", os.Getpid())
	}
	var kindList []string
	if *kinds != "" {
		for _, k := range strings.Split(*kinds, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kindList = append(kindList, k)
			}
		}
	}

	// -trace streams this worker's spans (worker.execute, worker.solve)
	// and the solvers' convergence events to a JSONL file that
	// cmd/butrace merges with the coordinator's to rebuild the full
	// cross-process trace of each job.
	tracer, closeTrace, err := cliflag.OpenTrace(*trace)
	if err != nil {
		log.Fatal(err)
	}
	var reg *obs.Registry
	if *metricsDump {
		reg = obs.NewRegistry()
		mdp.Observe(reg)
		par.Observe(reg)
	}

	w := &farm.Worker{
		Client:        &farm.Client{Base: *server},
		Name:          workerName,
		Kinds:         kindList,
		Concurrency:   *concurrency,
		SolverWorkers: *parFlag,
		TTL:           *ttl,
		Poll:          *poll,
		Drain:         *drain,
		Tracer:        tracer,
	}
	if *byzantine != "" {
		// Deliberately adversarial: the coordinator's validity consensus
		// is expected to reject and eventually quarantine this worker.
		w.Chaos = &farm.Chaos{Mode: *byzantine, Seed: *byzSeed}
		log.Printf("BYZANTINE MODE %q (seed %d): results will be tampered with before delivery", *byzantine, *byzSeed)
	}
	if !*quiet {
		w.Logf = log.Printf
	}
	if *logFormat != "plain" && *logFormat != "" {
		w.Slog = slogger
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // a second signal now kills the process outright
		log.Printf("draining: in-flight jobs will complete, no new leases")
	}()

	log.Printf("worker %s pulling from %s (concurrency %d)", workerName, *server, *concurrency)
	runErr := w.Run(ctx)
	executed, completed, failed, lost := w.Stats()
	log.Printf("done: executed %d, completed %d, failed %d, lost %d, rejected %d",
		executed, completed, failed, lost, w.Rejected())
	// Flush the trace file before exiting so butrace never sees a torn
	// final line from a graceful shutdown.
	if err := closeTrace(); err != nil {
		log.Printf("closing trace: %v", err)
	}
	if reg != nil {
		if err := cliflag.DumpMetrics(reg); err != nil {
			log.Printf("metrics dump: %v", err)
		}
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}
