// Benchmarks regenerating the paper's evaluation artifacts: one
// benchmark per table and figure, plus the ablations called out in
// DESIGN.md. Each solver benchmark reports the computed utility as a
// metric ("utility"), so `go test -bench` output doubles as a compact
// reproduction record.
package buanalysis_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"buanalysis/internal/bitcoin"
	"buanalysis/internal/bumdp"
	"buanalysis/internal/chain"
	"buanalysis/internal/core"
	"buanalysis/internal/countermeasure"
	"buanalysis/internal/difficulty"
	"buanalysis/internal/games"
	"buanalysis/internal/ledger"
	"buanalysis/internal/mdp"
	"buanalysis/internal/mempool"
	"buanalysis/internal/montecarlo"
	"buanalysis/internal/netsim"
	"buanalysis/internal/p2p"
	"buanalysis/internal/protocol"
	"buanalysis/internal/tx"
)

const mb = 1 << 20

func solveBU(b *testing.B, p bumdp.Params) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		a, err := bumdp.New(p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Solve()
		if err != nil {
			b.Fatal(err)
		}
		last = res.Utility
	}
	b.ReportMetric(last, "utility")
}

// BenchmarkTable2RelativeRevenue regenerates Table 2's headline cell:
// alpha=25%, 1:1, setting 1 (paper: 26.24%).
func BenchmarkTable2RelativeRevenue(b *testing.B) {
	solveBU(b, bumdp.Params{
		Alpha: 0.25, Beta: 0.375, Gamma: 0.375,
		Setting: bumdp.Setting1, Model: bumdp.Compliant,
	})
}

// BenchmarkTable2Setting2 regenerates the setting-2 cell 3:2 at 25%
// (paper: 25.29% — the attack that exists only with the sticky gate).
func BenchmarkTable2Setting2(b *testing.B) {
	beta := 0.75 * 3 / 5
	solveBU(b, bumdp.Params{
		Alpha: 0.25, Beta: beta, Gamma: 0.75 - beta,
		Setting: bumdp.Setting2, Model: bumdp.Compliant,
	})
}

// BenchmarkTable3AbsoluteRevenue regenerates a Table 3 BU cell:
// alpha=10%, 1:1, setting 2 (paper: 0.31).
func BenchmarkTable3AbsoluteRevenue(b *testing.B) {
	solveBU(b, bumdp.Params{
		Alpha: 0.10, Beta: 0.45, Gamma: 0.45,
		Setting: bumdp.Setting2, Model: bumdp.NonCompliant,
	})
}

// BenchmarkTable3BitcoinBaseline regenerates Table 3's bottom-right cell:
// the combined attack at alpha=25%, P(win tie)=50% (paper: 0.38).
func BenchmarkTable3BitcoinBaseline(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		a, err := bitcoin.New(bitcoin.Params{
			Alpha: 0.25, TieWinProb: 0.5, Objective: bitcoin.AbsoluteReward,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Solve()
		if err != nil {
			b.Fatal(err)
		}
		last = res.Utility
	}
	b.ReportMetric(last, "utility")
}

// BenchmarkTable4OrphanRate regenerates Table 4's maximum cell:
// alpha=1%, 2:3, setting 1 (paper: 1.77).
func BenchmarkTable4OrphanRate(b *testing.B) {
	beta := 0.99 * 2 / 5
	solveBU(b, bumdp.Params{
		Alpha: 0.01, Beta: beta, Gamma: 0.99 - beta,
		Setting: bumdp.Setting1, Model: bumdp.NonProfit,
	})
}

// BenchmarkFigure1StickyGate evaluates the Figure 1 sticky-gate
// walkthrough: acceptance of a gate-opening chain spanning a full
// 144-block window.
func BenchmarkFigure1StickyGate(b *testing.B) {
	bu := protocol.BU{EB: mb, AD: 3}
	path := []*chain.Block{chain.Genesis()}
	sizes := []int64{mb, mb, 8 * mb}
	for i := 0; i < protocol.DefaultGateWindow; i++ {
		sizes = append(sizes, mb)
	}
	for _, s := range sizes {
		p := path[len(path)-1]
		path = append(path, &chain.Block{Parent: p.ID(), Height: p.Height + 1, Size: s, Miner: "m"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bu.AcceptableDepth(path) != len(path)-1 {
			b.Fatal("figure 1 chain should be fully acceptable")
		}
	}
}

// BenchmarkFigure2PhaseSplit drives the two-phase split scenario through
// the network simulator.
func BenchmarkFigure2PhaseSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bob := &netsim.Node{Name: "bob", Power: 0.5, Rules: protocol.BU{EB: mb, AD: 3}, MG: mb / 2}
		carol := &netsim.Node{Name: "carol", Power: 0.5, Rules: protocol.BU{EB: 8 * mb, AD: 3}, MG: mb / 2}
		net, err := netsim.New(netsim.Config{Seed: 1}, []*netsim.Node{bob, carol})
		if err != nil {
			b.Fatal(err)
		}
		inject := func(parent *chain.Block, size int64, miner string) *chain.Block {
			blk := &chain.Block{Parent: parent.ID(), Height: parent.Height + 1, Size: size, Miner: miner}
			for _, n := range net.Nodes() {
				n.Deliver(blk)
			}
			return blk
		}
		c1 := inject(net.Genesis(), mb/2, "carol")
		split := inject(c1, 8*mb, "alice")
		s2 := inject(split, mb/2, "carol")
		s3 := inject(s2, mb/2, "carol")
		big := inject(s3, 8*mb+1, "alice")
		if bob.Target() != big || carol.Target() != s3 {
			b.Fatal("phase-2 split did not reproduce")
		}
	}
}

// BenchmarkFigure3Orphaning drives the one-block-orphans-two scenario.
func BenchmarkFigure3Orphaning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bob := &netsim.Node{Name: "bob", Power: 0.5, Rules: protocol.BU{EB: mb, AD: 3, NoGate: true}, MG: mb / 2}
		carol := &netsim.Node{Name: "carol", Power: 0.5, Rules: protocol.BU{EB: 8 * mb, AD: 3, NoGate: true}, MG: mb / 2}
		net, err := netsim.New(netsim.Config{Seed: 1}, []*netsim.Node{bob, carol})
		if err != nil {
			b.Fatal(err)
		}
		inject := func(parent *chain.Block, size int64, miner string) *chain.Block {
			blk := &chain.Block{Parent: parent.ID(), Height: parent.Height + 1, Size: size, Miner: miner}
			for _, n := range net.Nodes() {
				n.Deliver(blk)
			}
			return blk
		}
		c0 := inject(net.Genesis(), mb/2, "carol")
		split := inject(c0, 8*mb, "alice")
		b1 := inject(c0, mb/2, "bob")
		inject(b1, mb/2, "bob")
		s2 := inject(split, mb/2, "carol")
		s3 := inject(s2, mb/2, "carol")
		acc, err := bob.Store().Account(s3.ID())
		if err != nil {
			b.Fatal(err)
		}
		if acc.Orphaned["bob"] != 2 {
			b.Fatal("figure 3 orphaning did not reproduce")
		}
	}
}

// BenchmarkFigure4BlockSizeGame plays the Figure 4 game.
func BenchmarkFigure4BlockSizeGame(b *testing.B) {
	g, err := games.NewBlockSizeGame([]float64{0.1, 0.2, 0.3, 0.4}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := g.Play()
		if res.Survivors != 1 {
			b.Fatal("figure 4 playout changed")
		}
	}
}

// BenchmarkEBChoosingGameNash enumerates the pure equilibria of a
// 10-miner EB choosing game (Section 5.1).
func BenchmarkEBChoosingGameNash(b *testing.B) {
	powers := make([]float64, 10)
	for i := range powers {
		powers[i] = 0.1
	}
	g, err := games.NewEBChoosingGame(powers, 2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		eqs, err := g.PureNashEquilibria()
		if err != nil {
			b.Fatal(err)
		}
		if len(eqs) != 2 {
			b.Fatalf("expected 2 equilibria, got %d", len(eqs))
		}
	}
}

// BenchmarkCountermeasure simulates a year of the Section 6.3 voting
// scheme (about 26 difficulty periods).
func BenchmarkCountermeasure(b *testing.B) {
	groups := []countermeasure.MinerGroup{
		{Power: 0.6, Target: 4 * mb},
		{Power: 0.4, Target: 2 * mb},
	}
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := countermeasure.Simulate(countermeasure.Config{}, groups, 26, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloReplay measures the exact-dynamics strategy replay
// used to cross-validate every MDP value.
func BenchmarkMonteCarloReplay(b *testing.B) {
	p := bumdp.Params{Alpha: 0.25, Beta: 0.375, Gamma: 0.375, Model: bumdp.Compliant}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := montecarlo.RunStrategy(p, montecarlo.AlwaysSplitStrategy, 100000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkSimulation measures the discrete-event simulator with
// an active attacker (per 2000 blocks).
func BenchmarkNetworkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bob := &netsim.Node{Name: "bob", Power: 0.45, Rules: protocol.BU{EB: mb, AD: 6, NoGate: true}, MG: mb / 2}
		carol := &netsim.Node{Name: "carol", Power: 0.45, Rules: protocol.BU{EB: 8 * mb, AD: 6, NoGate: true}, MG: mb / 2}
		alice := &netsim.Node{Name: "alice", Power: 0.10, Rules: protocol.BU{EB: 8 * mb, AD: 6, NoGate: true}, MG: mb / 2}
		alice.Strategy = &netsim.SplitterStrategy{Bob: bob, Carol: carol, SplitSize: 8 * mb, NormalSize: mb / 2, AD: 6}
		net, err := netsim.New(netsim.Config{Seed: int64(i)}, []*netsim.Node{bob, carol, alice})
		if err != nil {
			b.Fatal(err)
		}
		net.Run(2000)
	}
}

// BenchmarkAblationAD sweeps the acceptance depth (Section 6.2: "a large
// AD allows an attacker to keep the blockchain forked for longer... a
// small AD lowers the attacker's effort to trigger all sticky gates"),
// reporting the non-profit damage at each AD.
func BenchmarkAblationAD(b *testing.B) {
	for _, ad := range []int{2, 4, 6, 8, 10} {
		ad := ad
		b.Run(fmt.Sprintf("AD=%d", ad), func(b *testing.B) {
			beta := 0.99 * 2 / 5
			solveBU(b, bumdp.Params{
				Alpha: 0.01, Beta: beta, Gamma: 0.99 - beta,
				AD: ad, Setting: bumdp.Setting1, Model: bumdp.NonProfit,
			})
		})
	}
}

// BenchmarkAblationGateWindow sweeps the sticky-gate length (Section
// 6.2: "a longer sticky gate period gives the attacker more time to mine
// giant blocks, whereas a shorter period allows the attacker to split
// the network more frequently").
func BenchmarkAblationGateWindow(b *testing.B) {
	for _, window := range []int{36, 72, 144} {
		window := window
		name := map[int]string{36: "window=36", 72: "window=72", 144: "window=144"}[window]
		b.Run(name, func(b *testing.B) {
			solveBU(b, bumdp.Params{
				Alpha: 0.10, Beta: 0.45, Gamma: 0.45,
				Setting: bumdp.Setting2, Model: bumdp.NonCompliant,
				GateWindow: window,
			})
		})
	}
}

// BenchmarkAblationDSConvention compares the paper's losing-chain
// settlement count against the winning-chain alternative.
func BenchmarkAblationDSConvention(b *testing.B) {
	for _, conv := range []bumdp.DSConvention{bumdp.DSLosingChain, bumdp.DSWinningChain} {
		conv := conv
		name := map[bumdp.DSConvention]string{
			bumdp.DSLosingChain:  "losing-chain",
			bumdp.DSWinningChain: "winning-chain",
		}[conv]
		b.Run(name, func(b *testing.B) {
			solveBU(b, bumdp.Params{
				Alpha: 0.10, Beta: 0.45, Gamma: 0.45,
				Setting: bumdp.Setting1, Model: bumdp.NonCompliant,
				DSConvention: conv,
			})
		})
	}
}

// BenchmarkSolverRelativeValueIteration isolates the inner solver on the
// setting-2 state space (one average-reward solve, no bisection).
func BenchmarkSolverRelativeValueIteration(b *testing.B) {
	a, err := bumdp.New(bumdp.Params{
		Alpha: 0.10, Beta: 0.45, Gamma: 0.45,
		Setting: bumdp.Setting2, Model: bumdp.NonCompliant,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Model.AverageReward(mdp.Options{Epsilon: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverParallelism isolates the Parallelism knob on the
// setting-2 relative-value-iteration solve: serial, two workers, and
// the automatic setting all compute bit-identical results.
func BenchmarkSolverParallelism(b *testing.B) {
	a, err := bumdp.New(bumdp.Params{
		Alpha: 0.10, Beta: 0.45, Gamma: 0.45,
		Setting: bumdp.Setting2, Model: bumdp.NonCompliant,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"two", 2}, {"auto", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := a.Model.AverageReward(mdp.Options{Epsilon: 1e-8, Parallelism: bc.par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileSetting2 measures the parallel model compiler on the
// largest state space in the evaluation (setting 2, 144-block window).
func BenchmarkCompileSetting2(b *testing.B) {
	var a *bumdp.Analysis
	var err error
	for i := 0; i < b.N; i++ {
		a, err = bumdp.New(bumdp.Params{
			Alpha: 0.10, Beta: 0.45, Gamma: 0.45,
			Setting: bumdp.Setting2, Model: bumdp.NonCompliant,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.Model.NumStates()), "states")
}

// BenchmarkGridSweepTable4 runs the grid-sweep runner over Table 4's
// setting-1 row (nine ratios at alpha=1%), the workload the cell-level
// parallelism targets.
func BenchmarkGridSweepTable4(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		cells := core.Sweep(bumdp.NonProfit, core.SweepConfig{
			Alphas:   []float64{0.01},
			Settings: []bumdp.Setting{bumdp.Setting1},
		})
		for _, c := range cells {
			if c.Err != nil {
				b.Fatal(c.Err)
			}
			last = c.Value
		}
	}
	b.ReportMetric(last, "utility")
}

// --- Substrate benchmarks -------------------------------------------------

// BenchmarkTxVerify measures Ed25519 transaction validation, the CPU
// cost driver of Section 6.4.
func BenchmarkTxVerify(b *testing.B) {
	var seed [32]byte
	seed[0] = 1
	alice := tx.NewKeypair(seed)
	u := tx.NewUTXOSet()
	cb := &tx.Transaction{Outputs: []tx.Output{{Value: 100, PubKey: alice.Pub}}}
	if err := u.ApplyCoinbase(cb, 100); err != nil {
		b.Fatal(err)
	}
	spend := &tx.Transaction{
		Inputs:  []tx.Input{{Previous: tx.Outpoint{TxID: cb.TxID(), Index: 0}}},
		Outputs: []tx.Output{{Value: 100, PubKey: alice.Pub}},
	}
	if err := spend.Sign(0, alice.Priv); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.ValidateTransaction(spend); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerkleRoot builds the Merkle root of a 1024-transaction block.
func BenchmarkMerkleRoot(b *testing.B) {
	var seed [32]byte
	kp := tx.NewKeypair(seed)
	txs := make([]*tx.Transaction, 1024)
	for i := range txs {
		txs[i] = &tx.Transaction{
			Outputs: []tx.Output{{Value: int64(i), PubKey: kp.Pub}},
			Payload: []byte{byte(i), byte(i >> 8)},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ledger.MerkleRoot(txs)
	}
}

// BenchmarkLedgerConnect measures connecting blocks of 100 real
// transactions to the ledger.
func BenchmarkLedgerConnect(b *testing.B) {
	var seed [32]byte
	seed[0] = 3
	kp := tx.NewKeypair(seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l := ledger.New(ledger.Params{Subsidy: 1 << 20})
		// Fund 100 outputs.
		cb := &tx.Transaction{Payload: []byte{1}}
		for j := 0; j < 100; j++ {
			cb.Outputs = append(cb.Outputs, tx.Output{Value: 1000, PubKey: kp.Pub})
		}
		fund := ledger.Assemble(l.Head(), []*tx.Transaction{cb}, "m", 0)
		if err := l.AddBlock(fund); err != nil {
			b.Fatal(err)
		}
		txs := []*tx.Transaction{{Outputs: []tx.Output{{Value: 1 << 20, PubKey: kp.Pub}}, Payload: []byte{2}}}
		for j := 0; j < 100; j++ {
			spend := &tx.Transaction{
				Inputs:  []tx.Input{{Previous: tx.Outpoint{TxID: cb.TxID(), Index: uint32(j)}}},
				Outputs: []tx.Output{{Value: 999, PubKey: kp.Pub}},
			}
			if err := spend.Sign(0, kp.Priv); err != nil {
				b.Fatal(err)
			}
			txs = append(txs, spend)
		}
		blk := ledger.Assemble(l.Head(), txs, "m", 0)
		b.StartTimer()
		if err := l.AddBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireCodec round-trips a full 100-transaction block message.
func BenchmarkWireCodec(b *testing.B) {
	var seed [32]byte
	kp := tx.NewKeypair(seed)
	msg := &p2p.Message{Type: p2p.MsgBlock, Block: chain.Genesis()}
	for i := 0; i < 100; i++ {
		txn := &tx.Transaction{
			Outputs: []tx.Output{{Value: int64(i), PubKey: kp.Pub}},
			Payload: make([]byte, 250),
		}
		msg.TxData = append(msg.TxData, txn.Serialize())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := p2p.Encode(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := p2p.Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMempoolAssemble fills a pool with 1000 transactions and
// assembles a size-limited block template.
func BenchmarkMempoolAssemble(b *testing.B) {
	var seed [32]byte
	seed[0] = 7
	kp := tx.NewKeypair(seed)
	u := tx.NewUTXOSet()
	pool := mempool.New(u)
	for i := 0; i < 1000; i++ {
		cb := &tx.Transaction{
			Outputs: []tx.Output{{Value: 1000, PubKey: kp.Pub}},
			Payload: []byte{byte(i), byte(i >> 8)},
		}
		if err := u.ApplyCoinbase(cb, 1000); err != nil {
			b.Fatal(err)
		}
		spend := &tx.Transaction{
			Inputs:  []tx.Input{{Previous: tx.Outpoint{TxID: cb.TxID(), Index: 0}}},
			Outputs: []tx.Output{{Value: 1000 - int64(i%97), PubKey: kp.Pub}},
		}
		if err := spend.Sign(0, kp.Priv); err != nil {
			b.Fatal(err)
		}
		if err := pool.Add(spend); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Assemble(64 << 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDifficultyRetarget measures a full retarget computation.
func BenchmarkDifficultyRetarget(b *testing.B) {
	cur, err := difficulty.FromDifficulty(1e12)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := difficulty.Retarget(cur, 1000000); err != nil {
			b.Fatal(err)
		}
	}
}
