// Quickstart: solve the paper's headline instance — a compliant,
// profit-driven miner with 25% of the power facing two honest groups of
// 37.5% each — and show that Bitcoin Unlimited is not incentive
// compatible: the optimal strategy earns 26.24% of the rewards instead
// of the fair 25%.
package main

import (
	"fmt"
	"log"

	"buanalysis"
)

func main() {
	log.SetFlags(0)

	a, err := buanalysis.NewBU(buanalysis.BUParams{
		Alpha: 0.25, Beta: 0.375, Gamma: 0.375,
		Setting: buanalysis.Setting1,
		Model:   buanalysis.Compliant,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := a.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Bitcoin Unlimited without a block validity consensus:")
	fmt.Printf("  a fully compliant 25%% miner can earn %.2f%% of the rewards\n", res.Utility*100)
	fmt.Printf("  (fair share: %.2f%%; the chain is forked %.0f%% of the time)\n",
		a.HonestUtility()*100, res.ForkRate*100)

	fmt.Println("\nHow: the attacker mines blocks of size EB_C, which the large-EB")
	fmt.Println("group accepts and the small-EB group rejects, splitting the honest")
	fmt.Println("mining power. The optimal chain choice per race state:")
	fmt.Println()
	fmt.Print(a.DescribePolicy(res.Policy, true))
}
