// Feemarket connects Section 2.3 to Section 5.2 from first principles:
// Rizun's fee-market model gives every miner an optimal and a maximum
// profitable block size (MPB) from its bandwidth; feeding those MPBs to
// the block size increasing game shows which miners get forced out of
// business when the block size is left to miner incentives.
package main

import (
	"fmt"
	"log"
	"sort"

	"buanalysis/internal/feemarket"
	"buanalysis/internal/games"
)

const mb = 1 << 20

func main() {
	log.SetFlags(0)

	market := feemarket.Market{
		BlockReward:  12.5,
		FeeRate:      2e-6, // coins per byte of transactions
		MeanInterval: 600,
	}
	miners := []feemarket.Miner{
		{Power: 0.10, Bandwidth: 5e4}, // home connection
		{Power: 0.20, Bandwidth: 1e5},
		{Power: 0.30, Bandwidth: 4e5},
		{Power: 0.40, Bandwidth: 1.6e6}, // datacenter
	}

	fmt.Println("Rizun's fee market: block size vs orphan risk")
	fmt.Printf("%12s %12s %14s %14s\n", "power", "bandwidth", "optimal size", "max profitable")
	mpbs, err := feemarket.DeriveMPBs(miners, market, 1<<31)
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range miners {
		opt, err := feemarket.OptimalSize(m, market, 1<<31)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11.0f%% %9.0fkB/s %11.1fMB %11.1fMB\n",
			m.Power*100, m.Bandwidth/1e3, opt/mb, float64(mpbs[i])/mb)
	}

	if !sort.SliceIsSorted(mpbs, func(i, j int) bool { return mpbs[i] < mpbs[j] }) {
		log.Fatal("MPBs not increasing; adjust market parameters")
	}

	fmt.Println()
	fmt.Println("Feeding the MPBs to the block size increasing game (Section 5.2):")
	powers := make([]float64, len(miners))
	for i, m := range miners {
		powers[i] = m.Power
	}
	g, err := games.NewBlockSizeGame(powers, mpbs)
	if err != nil {
		log.Fatal(err)
	}
	res := g.Play()
	for i, r := range res.Rounds {
		fmt.Printf("  round %d: raise past %.1fMB: yes=%.0f%% no=%.0f%% -> passed=%v\n",
			i+1, float64(mpbs[r.Lowest])/mb, r.YesPower*100, r.NoPower*100, r.Passed)
	}
	fmt.Printf("  survivors: miners %d..%d\n", res.Survivors+1, len(miners))
	if res.Survivors > 0 {
		fmt.Printf("\n=> %d slow miner(s) priced out: the \"emergent\" block size serves the\n", res.Survivors)
		fmt.Println("   remaining miners' profit, not the network's capacity (Analytical Result 5).")
	}
}
