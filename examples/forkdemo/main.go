// Forkdemo runs the full discrete-event network simulator end to end:
// two honest BU miner groups with different EBs, and an attacker driving
// the MDP-optimal compliant strategy. Everything emerges from the
// validity rules — the attacker mines one oversized block and the
// network splits, races, and reorganizes on its own.
package main

import (
	"fmt"
	"log"

	"buanalysis/internal/bumdp"
	"buanalysis/internal/netsim"
	"buanalysis/internal/protocol"
)

const mb = 1 << 20

func main() {
	log.SetFlags(0)

	const (
		alpha = 0.25
		ad    = 6
	)
	analysis, err := bumdp.New(bumdp.Params{
		Alpha: alpha, Beta: 0.375, Gamma: 0.375,
		Setting: bumdp.Setting1, Model: bumdp.Compliant,
	})
	if err != nil {
		log.Fatal(err)
	}
	solved, err := analysis.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MDP says a compliant 25%% miner can earn %.2f%%\n", solved.Utility*100)
	fmt.Println("replaying the optimal policy in the network simulator...")

	bob := &netsim.Node{Name: "bob", Power: 0.375,
		Rules: protocol.BU{EB: mb, AD: ad, NoGate: true}, MG: mb / 2}
	carol := &netsim.Node{Name: "carol", Power: 0.375,
		Rules: protocol.BU{EB: 8 * mb, AD: ad, NoGate: true}, MG: mb / 2}
	strat := &netsim.SplitterStrategy{
		Bob: bob, Carol: carol, SplitSize: 8 * mb, NormalSize: mb / 2, AD: ad,
		Decide: netsim.PolicyDecider(analysis, solved.Policy),
	}
	alice := &netsim.Node{Name: "alice", Power: alpha,
		Rules: protocol.BU{EB: 8 * mb, AD: ad, NoGate: true}, MG: mb / 2, Strategy: strat}

	net, err := netsim.New(netsim.Config{Seed: 2026}, []*netsim.Node{bob, carol, alice})
	if err != nil {
		log.Fatal(err)
	}
	const blocks = 20000
	net.Run(blocks)

	acc, err := net.Account()
	if err != nil {
		log.Fatal(err)
	}
	main, orphans := 0, 0
	for _, n := range acc.MainChain {
		main += n
	}
	for _, n := range acc.Orphaned {
		orphans += n
	}
	fmt.Printf("\nsimulated %d blocks: %d on the main chain, %d orphaned, %d splits\n",
		blocks, main, orphans, strat.Splits)
	for _, name := range []string{"alice", "bob", "carol"} {
		fmt.Printf("  %-6s main %5d  orphaned %5d\n", name, acc.MainChain[name], acc.Orphaned[name])
	}
	got := float64(acc.MainChain["alice"]) / float64(main)
	fmt.Printf("\nalice's measured relative revenue: %.2f%% (MDP value %.2f%%, fair share 25%%)\n",
		got*100, solved.Utility*100)
	fmt.Println("the simulator and the MDP agree: BU's missing BVC is the attack surface.")
}
