// Countermeasure demonstrates the paper's Section 6.3 proposal: keep a
// prescribed block validity consensus but let miners adjust the limit by
// on-chain vote, with thresholds, a veto, and an activation delay. The
// example contrasts three miner populations and shows that the limit
// tracks broad agreement, resists minority pushes, and that a modest
// veto protects slow nodes — all while every node derives the identical
// limit schedule from the chain itself.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"buanalysis/internal/countermeasure"
)

const mb = 1 << 20

func main() {
	log.SetFlags(0)

	cfg := countermeasure.Config{} // paper defaults: 2016-block periods, 200-block delay

	scenarios := []struct {
		name   string
		groups []countermeasure.MinerGroup
	}{
		{
			"broad agreement on 4MB",
			[]countermeasure.MinerGroup{
				{Power: 0.6, Target: 4 * mb},
				{Power: 0.4, Target: 4 * mb},
			},
		},
		{
			"a 40% minority wants 8MB",
			[]countermeasure.MinerGroup{
				{Power: 0.4, Target: 8 * mb},
				{Power: 0.6, Target: 1 * mb},
			},
		},
		{
			"80% push, 20% veto for slow nodes",
			[]countermeasure.MinerGroup{
				{Power: 0.8, Target: 8 * mb},
				{Power: 0.2, Target: mb / 2},
			},
		},
	}

	for _, sc := range scenarios {
		rng := rand.New(rand.NewSource(7))
		res, err := countermeasure.Simulate(cfg, sc.groups, 16, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s final limit %.2f MB\n", sc.name+":", float64(res.Final)/mb)

		// Every node re-derives the same schedule from the chain alone:
		// this is what "prescribed BVC" means operationally.
		s, err := countermeasure.BuildSchedule(cfg, res.Votes)
		if err != nil {
			log.Fatal(err)
		}
		last := res.Limits[len(res.Limits)-1]
		if got := s.LimitAt((len(res.Limits) - 1) * 2016); got != last {
			log.Fatalf("BVC violated: node derives %d, simulator had %d", got, last)
		}
	}

	fmt.Println()
	fmt.Println("In all three scenarios every node agrees on every block's validity at")
	fmt.Println("every height: the limit adjusts without ever abandoning the prescribed")
	fmt.Println("block validity consensus (unlike BU's per-node EB).")
}
