// Emergentconsensus tests the "emergent consensus" argument of BU's
// supporters with the two games of Section 5:
//
//  1. The EB choosing game: when every miner can profitably run any EB,
//     signaling the same EB is a Nash equilibrium — the grain of truth
//     in the emergent-consensus argument (Analytical Result 4).
//  2. The block size increasing game: when miners have different maximum
//     profitable block sizes, large miners raise the size to force small
//     miners out, and consensus holds only for "stable" power
//     distributions (Analytical Result 5).
package main

import (
	"fmt"
	"log"

	"buanalysis/internal/games"
)

func main() {
	log.SetFlags(0)

	fmt.Println("--- Game 1: the EB choosing game (Assumption 1: any EB is profitable) ---")
	g1, err := games.NewEBChoosingGame([]float64{0.2, 0.3, 0.5}, 2)
	if err != nil {
		log.Fatal(err)
	}
	eqs, err := g1.PureNashEquilibria()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miners 20/30/50%%, two candidate EBs: %d pure equilibria\n", len(eqs))
	for _, eq := range eqs {
		fmt.Printf("  profile %v  (everyone on the same EB)\n", eq)
	}
	fmt.Println("=> consensus CAN emerge when the assumption holds...")

	// And the deliberation itself converges: best-response dynamics from a
	// split start reach a uniform profile.
	dyn, err := g1.BestResponseDynamics(games.Profile{0, 1, 0}, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   best-response dynamics from [0 1 0]: converged=%v final=%v\n",
		dyn.Converged, dyn.Final)

	fmt.Println()
	fmt.Println("--- Game 2: the block size increasing game (realistic: miners have MPBs) ---")
	for _, powers := range [][]float64{
		{0.1, 0.2, 0.3, 0.4}, // Figure 4: group 1 gets squeezed out
		{0.3, 0.3, 0.4},      // stable: the two small groups hold 60%
		{0.1, 0.2, 0.7},      // a dominant group sweeps the board
	} {
		g2, err := games.NewBlockSizeGame(powers, nil)
		if err != nil {
			log.Fatal(err)
		}
		res := g2.Play()
		fmt.Printf("powers %v: stable=%v, %d round(s), groups forced out: %d\n",
			powers, g2.AllStable(), len(res.Rounds), res.Survivors)
	}
	fmt.Println("=> ...but with heterogeneous capacities, emergent consensus holds only")
	fmt.Println("   for stable distributions, and large miners profit from breaking it.")
}
