// Doublespend compares double-spending profitability in Bitcoin Unlimited
// and in Bitcoin (Analytical Result 2): for a range of attacker sizes it
// solves the BU absolute-reward MDP and the optimal combined
// selfish-mining/double-spending attack on Bitcoin, then prints the
// per-block revenue of each against honest mining.
//
// The headline: in BU even a 1% miner profits from double-spending,
// whereas in Bitcoin the attack is unprofitable below ~10% even when the
// attacker wins every tie.
package main

import (
	"fmt"
	"log"

	"buanalysis"
)

func main() {
	log.SetFlags(0)

	alphas := []float64{0.01, 0.05, 0.10, 0.25}

	fmt.Println("Double-spending revenue per block mined in the network")
	fmt.Println("(RDS = 10 block rewards, four confirmations; honest mining earns alpha)")
	fmt.Println()
	fmt.Printf("%8s %14s %14s %18s\n", "alpha", "BU (set 1)", "BU (set 2)", "Bitcoin (tie=100%)")

	for _, alpha := range alphas {
		rest := (1 - alpha) / 2
		var bu [2]float64
		for i, setting := range []buanalysis.Setting{buanalysis.Setting1, buanalysis.Setting2} {
			a, err := buanalysis.NewBU(buanalysis.BUParams{
				Alpha: alpha, Beta: rest, Gamma: rest,
				Setting: setting, Model: buanalysis.NonCompliant,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := a.Solve()
			if err != nil {
				log.Fatal(err)
			}
			bu[i] = res.Utility
		}

		btc, err := buanalysis.NewBitcoin(buanalysis.BitcoinParams{
			Alpha: alpha, TieWinProb: 1, Objective: buanalysis.AbsoluteReward,
		})
		if err != nil {
			log.Fatal(err)
		}
		btcRes, err := btc.Solve()
		if err != nil {
			log.Fatal(err)
		}

		mark := func(v float64) string {
			if v > alpha+1e-4 {
				return fmt.Sprintf("%.4f  (+%.0f%%)", v, (v/alpha-1)*100)
			}
			return fmt.Sprintf("%.4f  (none)", v)
		}
		fmt.Printf("%7.1f%% %14s %14s %18s\n",
			alpha*100, mark(bu[0]), mark(bu[1]), mark(btcRes.Utility))
	}

	fmt.Println()
	fmt.Println("BU turns double-spending profitable at every attacker size; Bitcoin")
	fmt.Println("resists it below roughly 10% of the mining power (Table 3). The sliver")
	fmt.Println("of Bitcoin profit at 5% is pure selfish mining (tie=100%), not")
	fmt.Println("double-spending.")
}
