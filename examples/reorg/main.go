// Reorg walks through a double-spend against the full ledger substrate:
// real Ed25519-signed transactions, Merkle-committed blocks, UTXO
// validation, and a chain reorganization that reverses a confirmed
// payment. It is the microscopic view of what the Table 3 numbers count.
package main

import (
	"fmt"
	"log"

	"buanalysis/internal/ledger"
	"buanalysis/internal/tx"
)

const subsidy = 50

func main() {
	log.SetFlags(0)

	kp := func(b byte) tx.Keypair {
		var s [32]byte
		s[0] = b
		return tx.NewKeypair(s)
	}
	attacker, merchant, accomplice := kp(1), kp(2), kp(3)

	l := ledger.New(ledger.Params{Subsidy: subsidy})
	coinbase := func(to tx.Keypair, tag byte) *tx.Transaction {
		return &tx.Transaction{
			Outputs: []tx.Output{{Value: subsidy, PubKey: to.Pub}},
			Payload: []byte{tag},
		}
	}
	mustAdd := func(fb *ledger.FullBlock) {
		if err := l.AddBlock(fb); err != nil {
			log.Fatal(err)
		}
	}

	// Block 1 funds the attacker.
	cb := coinbase(attacker, 1)
	fund := ledger.Assemble(l.Head(), []*tx.Transaction{cb}, "miner", 0)
	mustAdd(fund)
	coin := tx.Outpoint{TxID: cb.TxID(), Index: 0}

	// The attacker pays the merchant; the payment gets one more
	// confirmation on top.
	payMerchant := &tx.Transaction{
		Inputs:  []tx.Input{{Previous: coin}},
		Outputs: []tx.Output{{Value: subsidy, PubKey: merchant.Pub}},
	}
	if err := payMerchant.Sign(0, attacker.Priv); err != nil {
		log.Fatal(err)
	}
	mustAdd(ledger.Assemble(l.Head(), []*tx.Transaction{coinbase(merchant, 2), payMerchant}, "miner", 0))
	mustAdd(ledger.Assemble(l.Head(), []*tx.Transaction{coinbase(merchant, 3)}, "miner", 0))
	fmt.Printf("merchant's payment: %d confirmations -> goods shipped\n",
		l.Confirmations(payMerchant.TxID()))

	// Meanwhile the attacker mined a secret branch from the funding
	// block, spending the same coin to an accomplice.
	doubleSpend := &tx.Transaction{
		Inputs:  []tx.Input{{Previous: coin}},
		Outputs: []tx.Output{{Value: subsidy, PubKey: accomplice.Pub}},
	}
	if err := doubleSpend.Sign(0, attacker.Priv); err != nil {
		log.Fatal(err)
	}
	secret := ledger.Assemble(fund.Header, []*tx.Transaction{coinbase(attacker, 4), doubleSpend}, "attacker", 0)
	mustAdd(secret)
	prev := secret
	for tag := byte(5); tag < 7; tag++ {
		prev = ledger.Assemble(prev.Header, []*tx.Transaction{coinbase(attacker, tag)}, "attacker", 0)
		mustAdd(prev)
	}

	fmt.Printf("secret branch published: head now %v (height %d), reorgs: %d\n",
		l.Head().ID(), l.Head().Height, l.Reorgs)
	fmt.Printf("merchant's payment:     %d confirmations (reversed!)\n",
		l.Confirmations(payMerchant.TxID()))
	fmt.Printf("double spend:           %d confirmations\n",
		l.Confirmations(doubleSpend.TxID()))
	fmt.Printf("transactions removed from the ledger by the reorg: %d\n\n", l.DisconnectedTxs)

	fmt.Println("In Bitcoin this requires outmining the network over 4+ blocks; the BU")
	fmt.Println("analysis (Table 3) shows a strategic miner gets the same effect by")
	fmt.Println("splitting honest mining power with excessive blocks — even at 1% power.")
}
